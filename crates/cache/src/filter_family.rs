//! Family-batched replay: one pass over a miss stream drives *every* L2
//! size of a configuration family at once.
//!
//! The design spaces of the paper vary, for a fixed L1, only the L2
//! *capacity* (§2.1: L2 from 2×L1 up to 256KB, same 16B lines, same
//! associativity). The scalar back-ends in [`filter`](crate::filter)
//! already replay only the L1 miss events, but they still decode the
//! packed 17-byte events once per configuration. Here one decode of each
//! event fans into N structure-of-arrays L2 states — per-configuration
//! slot arrays, counters, a per-member replacement bank
//! ([`ReplBank`](crate::cache)) holding the policy words (LRU/FIFO
//! stamps, PLRU tree bits, SRRIP RRPVs) alongside the `(line<<1)|dirty`
//! slot words, and crucially a **per-configuration [`Lfsr16`]**, so
//! pseudo-random replacement draws happen in exactly the order the
//! standalone back-end would make them and every statistic stays
//! bit-identical.
//!
//! ## Why batching preserves the bit-exact contract
//!
//! Each member's L2 observes the same event sequence it would see alone:
//! the batched loop applies one event to every member before moving on,
//! and members never share mutable state. Replacement state is a replica
//! of the scalar [`Cache`](crate::Cache)'s: the same `ReplBank` state
//! machines, driven by the same touch/fill/victim call sequence — so
//! stamp clocks, tree bits, and RRPVs evolve identically, and the only
//! stateful randomness (the pseudo-random LFSR, consulted *only* when a
//! set-associative fill finds no free way) is carried per member with the
//! same seed as a fresh `Cache`. Members may even mix replacement
//! policies: each bank is built from its own member's configuration. The
//! exclusive policy's per-L1-set fill-dirty mirror must also be per
//! member — its entries come out of the member's own L2 extracts, whose
//! dirty bits depend on L2 capacity — so it is carried per configuration,
//! not once per family (see `docs/models.md`).
//!
//! ## The direct-mapped fast path
//!
//! For a conventional family of direct-mapped L2s the batched loop
//! collapses further: nested power-of-two DM caches index with prefix
//! bits, and demand-filled content is *inclusive* across sizes (resident
//! at size S ⇒ resident at 2S), so one "smallest hitting size" threshold
//! per access answers the whole family. Hits and victim writebacks then
//! accumulate into per-threshold histograms instead of per-member
//! counters — see `DmConventionalFamily` for the invariant. Replacement
//! policy is irrelevant at one way per set, so the fast path serves every
//! [`ReplacementKind`].
//!
//! ## Errors instead of panics
//!
//! An unsupported family shape surfaces as a typed [`FamilyError`] from
//! the `try_replay_*` entry points; the plain `replay_*` wrappers keep
//! the old panicking contract for callers that validate up front. Sweep
//! workers use the `try_` forms and fall back to scalar filtered replay,
//! so no configuration can panic a worker thread.

use crate::cache::{Liveness, ReplBank};
use crate::config::CacheConfig;
#[cfg(test)]
use crate::config::ReplacementKind;
use crate::filter::{replay_single, walk_events, EventSink, MissStream};
use crate::replacement::Lfsr16;
use crate::stats::HierarchyStats;
use std::error::Error;
use std::fmt;
use tlc_trace::LineAddr;

/// Slot encoding: `(line << 1) | dirty`, with `u64::MAX` as the invalid
/// sentinel. `INVALID >> 1` is `2^63 - 1`, which can never equal a real
/// line address (lines are byte addresses divided by the line size), so
/// a single shifted compare tests "valid and tag matches".
const INVALID: u64 = u64::MAX;

/// Why a configuration family cannot be batch-replayed.
///
/// Returned by the `try_replay_*` entry points; the panicking `replay_*`
/// wrappers turn these into messages. Callers (the sweep runner) treat an
/// error as "replay each member through the scalar back-end instead" —
/// the statistics are identical either way, only the batching is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyError {
    /// A member's line size differs from the stream's; the events would
    /// be misinterpreted.
    LineSize {
        /// The member's line size in bytes.
        member: u64,
        /// The stream's line size in bytes.
        stream: u64,
    },
    /// Members disagree on associativity; the batched set scans
    /// monomorphise on a single way count.
    MixedWays {
        /// The first member's way count.
        first: u32,
        /// The disagreeing member's way count.
        other: u32,
    },
}

impl fmt::Display for FamilyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FamilyError::LineSize { member, stream } => write!(
                f,
                "family member line size {member}B differs from the stream's {stream}B \
                 (L1 and L2 must share a line size)"
            ),
            FamilyError::MixedWays { first, other } => {
                write!(f, "family members disagree on associativity ({first} vs {other} ways)")
            }
        }
    }
}

impl Error for FamilyError {}

/// One member's L2 array plus its private replacement bank, counters,
/// liveness tallies, and LFSR.
///
/// Slots are set-major (`slots[set * ways + way]`), matching
/// [`Cache`](crate::Cache)'s layout, but hold one packed `u64` per way
/// instead of a 16-byte `Way` struct: half the memory touched per probe.
/// The policy words live in the member's [`ReplBank`] — the same state
/// machines the scalar cache uses, so bit-compatibility holds by
/// construction.
#[derive(Debug)]
struct L2State {
    slots: Vec<u64>,
    set_mask: u64,
    repl: ReplBank,
    lfsr: Lfsr16,
    hits: u64,
    misses: u64,
    writebacks: u64,
    /// Lifetime LFSR victim draws (instrumented builds only; only
    /// pseudo-random members ever draw). Not touched by
    /// [`L2State::reset_counters`] — the LFSR itself is never reset,
    /// matching the scalar [`Cache`](crate::Cache) count.
    lfsr_draws: u64,
    /// Lifetime fig-21a swaps (instrumented exclusive families only;
    /// lifetime for the same reason as `lfsr_draws`).
    swaps: u64,
    /// Per-slot demand-hit counts since the slot's last fill, saturating
    /// at 255 (instrumented builds only; empty otherwise).
    hit_counts: Vec<u8>,
    /// Departed fill-generation tallies (see
    /// [`Liveness`](crate::Liveness)); lifetime, like `lfsr_draws`.
    live: crate::cache::LiveTally,
}

impl L2State {
    fn new(cfg: &CacheConfig) -> Self {
        let lines = cfg.lines() as usize;
        L2State {
            slots: vec![INVALID; lines],
            set_mask: cfg.num_sets() - 1,
            repl: ReplBank::new(cfg.replacement(), cfg.num_sets() as usize, cfg.ways() as usize),
            lfsr: Lfsr16::default(),
            hits: 0,
            misses: 0,
            writebacks: 0,
            lfsr_draws: 0,
            swaps: 0,
            hit_counts: if tlc_obs::ENABLED { vec![0; lines] } else { Vec::new() },
            live: crate::cache::LiveTally::default(),
        }
    }

    fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Counts a demand hit on the slot at `idx` (no-op uninstrumented).
    #[inline]
    fn note_hit(&mut self, idx: usize) {
        if tlc_obs::ENABLED {
            let c = &mut self.hit_counts[idx];
            *c = c.saturating_add(1);
        }
    }

    /// Lifetime liveness, classifying still-resident slots by their hits
    /// so far — the member-level analogue of
    /// [`Cache::liveness`](crate::Cache::liveness).
    fn liveness(&self) -> Liveness {
        self.live.snapshot(
            self.slots.iter().zip(&self.hit_counts).filter(|(&s, _)| s != INVALID).map(|(_, &h)| h),
        )
    }

    /// Replica of
    /// [`Cache::fill_after_miss`](crate::Cache::fill_after_miss) for any
    /// policy: a 1-way set fills its only way with no replacement
    /// bookkeeping; otherwise a free way is taken first (no draw), else
    /// the bank picks a victim (one LFSR draw for pseudo-random members)
    /// — exactly the scalar call order, so stamp clocks and RRPVs match.
    /// Counts a dirty eviction as an off-chip writeback.
    #[inline]
    fn fill_after_miss(&mut self, ways: usize, line: u64, dirty: bool) {
        let set = (line & self.set_mask) as usize;
        let base = set * ways;
        let way = if ways == 1 {
            0
        } else if let Some(i) = (0..ways).find(|&i| self.slots[base + i] == INVALID) {
            self.repl.filled(set, ways, i as u32, ways as u32);
            i
        } else {
            if tlc_obs::ENABLED && matches!(self.repl, ReplBank::Random) {
                self.lfsr_draws += 1;
            }
            let w = self.repl.victim(set, ways, ways as u32, &mut self.lfsr);
            self.repl.filled(set, ways, w, ways as u32);
            w as usize
        };
        let old = self.slots[base + way];
        if tlc_obs::ENABLED {
            self.live.fill();
            if old != INVALID {
                self.live.retire(self.hit_counts[base + way]);
            }
            self.hit_counts[base + way] = 0;
        }
        if old != INVALID && old & 1 == 1 {
            self.writebacks += 1;
        }
        self.slots[base + way] = (line << 1) | dirty as u64;
    }

    /// Replica of
    /// [`Cache::merge_if_present`](crate::Cache::merge_if_present):
    /// merge the dirty bit into a resident copy and refresh its
    /// replacement state, reporting whether one was found. A write-back
    /// merge is not a demand hit, so the liveness tallies don't move.
    #[inline]
    fn merge_if_present(&mut self, ways: usize, line: u64, dirty: bool) -> bool {
        let set = (line & self.set_mask) as usize;
        let base = set * ways;
        for i in 0..ways {
            if self.slots[base + i] >> 1 == line {
                self.slots[base + i] |= dirty as u64;
                self.repl.touch(set, ways, i as u32, ways as u32);
                return true;
            }
        }
        false
    }
}

/// Shared geometry of a family: the associativity every member agrees on
/// (validated by [`FamilyWays::try_of`]).
#[derive(Debug, Clone, Copy)]
struct FamilyWays {
    ways: usize,
}

impl FamilyWays {
    /// Validates that every member shares the stream's line size and one
    /// associativity. Replacement policies may differ per member — each
    /// member carries its own [`ReplBank`].
    fn try_of(l2_cfgs: &[CacheConfig], stream: &MissStream) -> Result<FamilyWays, FamilyError> {
        let ways = l2_cfgs[0].ways();
        for cfg in l2_cfgs {
            if cfg.line_bytes() != stream.line_bytes() {
                return Err(FamilyError::LineSize {
                    member: cfg.line_bytes(),
                    stream: stream.line_bytes(),
                });
            }
            if cfg.ways() != ways {
                return Err(FamilyError::MixedWays { first: ways, other: cfg.ways() });
            }
        }
        Ok(FamilyWays { ways: ways as usize })
    }
}

/// Batched conventional back-end: the family counterpart of
/// `filter::ConventionalBack`, one [`L2State`] per member.
///
/// `W` is the compile-time associativity — the hot set scans unroll for
/// the common widths (2/4/8-way); `W = 0` selects the dynamic fallback
/// that reads the width from [`FamilyWays`] at run time.
#[derive(Debug)]
struct ConventionalFamily<const W: usize> {
    states: Vec<L2State>,
    fw: FamilyWays,
}

impl<const W: usize> EventSink for ConventionalFamily<W> {
    #[inline]
    fn consume(&mut self, _fetch: bool, line: LineAddr, victim: Option<(LineAddr, bool)>) {
        let l = line.0;
        let ways = if W == 0 { self.fw.ways } else { W };
        for st in &mut self.states {
            let set = (l & st.set_mask) as usize;
            let base = set * ways;
            let hit = (0..ways).find(|&i| st.slots[base + i] >> 1 == l);
            if let Some(hw) = hit {
                // `access(line, false)`: the dirty-merge of `false` is a
                // no-op, but the policy touch is not (LRU/PLRU/SRRIP all
                // promote on hits).
                st.hits += 1;
                if ways > 1 {
                    st.repl.touch(set, ways, hw as u32, ways as u32);
                }
                st.note_hit(base + hw);
            } else {
                st.misses += 1;
                st.fill_after_miss(ways, l, false);
            }
            if let Some((vline, written)) = victim {
                if written && !st.merge_if_present(ways, vline.0, true) {
                    st.writebacks += 1;
                }
            }
        }
    }

    fn reset_counters(&mut self) {
        for st in &mut self.states {
            st.reset_counters();
        }
    }
}

/// Batched exclusive back-end: the family counterpart of
/// `filter::ExclusiveBack`. The per-L1-set fill-dirty mirror is carried
/// **per member**: a mirror entry records whether the member's own L2
/// extract was dirty, which depends on that member's capacity (see the
/// module docs).
#[derive(Debug)]
struct ExclusiveFamilyMember {
    l2: L2State,
    /// "Current resident was filled from a dirty L2 extract", per L1I set.
    mirror_i: Vec<bool>,
    /// Same, per L1D set.
    mirror_d: Vec<bool>,
}

#[derive(Debug)]
struct ExclusiveFamily<const W: usize> {
    members: Vec<ExclusiveFamilyMember>,
    fw: FamilyWays,
    l1_set_mask: u64,
}

impl<const W: usize> EventSink for ExclusiveFamily<W> {
    #[inline]
    fn consume(&mut self, fetch: bool, line: LineAddr, victim: Option<(LineAddr, bool)>) {
        let l = line.0;
        let ways = if W == 0 { self.fw.ways } else { W };
        let set = (l & self.l1_set_mask) as usize;
        for m in &mut self.members {
            let mirror = if fetch { &mut m.mirror_i } else { &mut m.mirror_d };
            // Read the victim's fill-dirty component BEFORE the new fill
            // overwrites the set's mirror entry.
            let victim = victim.map(|(vline, written)| (vline.0, written || mirror[set]));
            let st = &mut m.l2;
            let l2_set = (l & st.set_mask) as usize;
            let base = l2_set * ways;
            let hit_way = (0..ways).find(|&w| st.slots[base + w] >> 1 == l);
            if let Some(hw) = hit_way {
                // `access`: count the hit, touch, bump the hit count...
                st.hits += 1;
                if ways > 1 {
                    st.repl.touch(l2_set, ways, hw as u32, ways as u32);
                }
                st.note_hit(base + hw);
                // ...then `extract`: read the dirty bit, end the slot's
                // fill generation (its hits include the one just
                // counted), and free the slot.
                let dirty = st.slots[base + hw] & 1;
                st.slots[base + hw] = INVALID;
                if tlc_obs::ENABLED {
                    st.live.retire(st.hit_counts[base + hw]);
                    st.hit_counts[base + hw] = 0;
                }
                mirror[set] = dirty == 1;
                match victim {
                    Some((vl, vdirty)) => {
                        if (vl & st.set_mask) == (l & st.set_mask)
                            && !st.slots[base..base + ways].iter().any(|&s| s >> 1 == vl)
                        {
                            // Figure 21-a swap: the victim takes the
                            // requested line's way (`fill_at(vline)`).
                            if tlc_obs::ENABLED {
                                st.swaps += 1;
                                st.live.fill();
                            }
                            st.slots[base + hw] = (vl << 1) | vdirty as u64;
                            st.repl.filled(l2_set, ways, hw as u32, ways as u32);
                        } else {
                            // `fill_at(line)` back into its freed way,
                            // then send the victim separately.
                            if tlc_obs::ENABLED {
                                st.live.fill();
                            }
                            st.slots[base + hw] = (l << 1) | dirty;
                            st.repl.filled(l2_set, ways, hw as u32, ways as u32);
                            if !st.merge_if_present(ways, vl, vdirty) {
                                st.fill_after_miss(ways, vl, vdirty);
                            }
                        }
                    }
                    None => {
                        if tlc_obs::ENABLED {
                            st.live.fill();
                        }
                        st.slots[base + hw] = (l << 1) | dirty;
                        st.repl.filled(l2_set, ways, hw as u32, ways as u32);
                    }
                }
            } else {
                st.misses += 1;
                // Off-chip refill bypasses the L2: no fill-dirty component.
                mirror[set] = false;
                if let Some((vl, vdirty)) = victim {
                    if !st.merge_if_present(ways, vl, vdirty) {
                        st.fill_after_miss(ways, vl, vdirty);
                    }
                }
            }
        }
    }

    fn reset_counters(&mut self) {
        for m in &mut self.members {
            m.l2.reset_counters();
        }
    }
}

/// Batched conventional direct-mapped fast path.
///
/// Invariant (maintained inductively, sizes sorted ascending): a
/// demand-filled DM cache's set `s` holds exactly the most recent event
/// line in `s`'s conflict group, and nested power-of-two set masks nest
/// the conflict groups — so residency is *inclusive* across the family
/// (resident at size `k` ⇒ resident at every larger size). Each access
/// therefore has one threshold `t` = smallest size index that hits; the
/// event is a hit for every member `k ≥ t` and installs (evicting) for
/// every `k < t`. Victim merges get the same treatment with their own
/// threshold. Hits and victim writebacks accumulate into per-threshold
/// histograms (index `K` = "nowhere"), turned into per-member counters
/// by prefix sums at the end.
///
/// Dirty bits are *not* inclusive (an install at a small size clears the
/// bit a larger size preserves), so they live in the per-size slot
/// arrays as usual — and so do the per-set hit counts behind the
/// liveness tallies, which follow each member's own fill generations.
#[derive(Debug)]
struct DmConventionalFamily {
    /// Per size (ascending): one slot per set.
    slots: Vec<Vec<u64>>,
    set_masks: Vec<u64>,
    /// `hit_hist[t]`: events whose smallest hitting size index is `t`.
    hit_hist: Vec<u64>,
    /// `vic_hist[t]`: written victims whose smallest resident size is `t`.
    vic_hist: Vec<u64>,
    /// Dirty evictions on install, per size.
    evict_wb: Vec<u64>,
    /// Per size: per-set demand-hit counts since the slot's last install
    /// (instrumented builds only; empty otherwise).
    hit_counts: Vec<Vec<u8>>,
    /// Per size: departed fill-generation tallies.
    live: Vec<crate::cache::LiveTally>,
}

impl DmConventionalFamily {
    fn new(cfgs_ascending: &[&CacheConfig]) -> Self {
        let k = cfgs_ascending.len();
        DmConventionalFamily {
            slots: cfgs_ascending.iter().map(|c| vec![INVALID; c.num_sets() as usize]).collect(),
            set_masks: cfgs_ascending.iter().map(|c| c.num_sets() - 1).collect(),
            hit_hist: vec![0; k + 1],
            vic_hist: vec![0; k + 1],
            evict_wb: vec![0; k],
            hit_counts: if tlc_obs::ENABLED {
                cfgs_ascending.iter().map(|c| vec![0; c.num_sets() as usize]).collect()
            } else {
                Vec::new()
            },
            live: vec![crate::cache::LiveTally::default(); k],
        }
    }

    /// Smallest size index at which `line` is resident, or `len` if none.
    #[inline]
    fn threshold(&self, line: u64) -> usize {
        for (k, mask) in self.set_masks.iter().enumerate() {
            if self.slots[k][(line & mask) as usize] >> 1 == line {
                return k;
            }
        }
        self.set_masks.len()
    }

    /// Per-member `(l2_hits, l2_misses, offchip_writebacks)` in ascending
    /// size order.
    fn counters(&self) -> Vec<(u64, u64, u64)> {
        let total_hits: u64 = self.hit_hist.iter().sum();
        let total_vics: u64 = self.vic_hist.iter().sum();
        let mut hits = 0u64;
        let mut vics = 0u64;
        (0..self.set_masks.len())
            .map(|k| {
                hits += self.hit_hist[k];
                vics += self.vic_hist[k];
                (hits, total_hits - hits, self.evict_wb[k] + (total_vics - vics))
            })
            .collect()
    }

    /// Family-total liveness: each member's tallies snapshotted over its
    /// residents, then summed (the obs counters aggregate members).
    fn liveness_total(&self) -> Liveness {
        if !tlc_obs::ENABLED {
            return Liveness::default();
        }
        let mut total = Liveness::default();
        for (k, live) in self.live.iter().enumerate() {
            total.merge(
                live.snapshot(
                    self.slots[k]
                        .iter()
                        .zip(&self.hit_counts[k])
                        .filter(|(&s, _)| s != INVALID)
                        .map(|(_, &h)| h),
                ),
            );
        }
        total
    }
}

impl EventSink for DmConventionalFamily {
    #[inline]
    fn consume(&mut self, _fetch: bool, line: LineAddr, victim: Option<(LineAddr, bool)>) {
        let l = line.0;
        let t = self.threshold(l);
        self.hit_hist[t] += 1;
        if tlc_obs::ENABLED {
            // Sizes at or above the threshold hit: a demand hit on each
            // member's resident generation.
            for k in t..self.set_masks.len() {
                let c = &mut self.hit_counts[k][(l & self.set_masks[k]) as usize];
                *c = c.saturating_add(1);
            }
        }
        for k in 0..t {
            let idx = (l & self.set_masks[k]) as usize;
            let slot = self.slots[k][idx];
            if slot != INVALID && slot & 1 == 1 {
                self.evict_wb[k] += 1;
            }
            if tlc_obs::ENABLED {
                self.live[k].fill();
                if slot != INVALID {
                    self.live[k].retire(self.hit_counts[k][idx]);
                }
                self.hit_counts[k][idx] = 0;
            }
            self.slots[k][idx] = l << 1;
        }
        if let Some((vline, written)) = victim {
            if written {
                let vl = vline.0;
                let tv = self.threshold(vl);
                self.vic_hist[tv] += 1;
                // Write-back merges refresh the dirty bit only — not a
                // demand hit, so the hit counts stay put.
                for k in tv..self.set_masks.len() {
                    self.slots[k][(vl & self.set_masks[k]) as usize] |= 1;
                }
            }
        }
    }

    fn reset_counters(&mut self) {
        self.hit_hist.iter_mut().for_each(|h| *h = 0);
        self.vic_hist.iter_mut().for_each(|h| *h = 0);
        self.evict_wb.iter_mut().for_each(|h| *h = 0);
    }
}

/// Assembles one member's [`HierarchyStats`] from its three L2 counters
/// plus the stream's L1-side counters.
fn assemble(
    stream: &MissStream,
    (l2_hits, l2_misses, offchip_writebacks): (u64, u64, u64),
) -> HierarchyStats {
    HierarchyStats { l2_hits, l2_misses, offchip_writebacks, ..*stream.l1_stats() }
}

/// Flushes one family pass's totals: the stream was decoded once
/// (`l2.events_replayed` counts passes × events, exposing the family
/// engine's fan-in), while probes/hits/misses/writebacks/liveness sum
/// over the members — matching the scalar filtered engine's totals on
/// the same configurations, since the per-member statistics are
/// bit-identical.
fn flush_family(
    stream: &MissStream,
    out: &[HierarchyStats],
    draws: u64,
    swaps: u64,
    live: Liveness,
) {
    if !tlc_obs::ENABLED {
        return;
    }
    let totals = HierarchyStats {
        l2_hits: out.iter().map(|s| s.l2_hits).sum(),
        l2_misses: out.iter().map(|s| s.l2_misses).sum(),
        offchip_writebacks: out.iter().map(|s| s.offchip_writebacks).sum(),
        ..HierarchyStats::default()
    };
    crate::filter::flush_l2_counters(stream.len(), &totals, draws, swaps, live);
}

/// Replays `stream` once through a whole family of conventional L2s,
/// returning one [`HierarchyStats`] per member of `l2_cfgs`, in input
/// order — each bit-identical to
/// [`replay_conventional`](crate::filter::replay_conventional) on the
/// same configuration.
///
/// A family of direct-mapped members takes the threshold/histogram fast
/// path (`DmConventionalFamily`); any other associativity takes the
/// generic batched loop. Every [`ReplacementKind`] is supported, and
/// members may mix policies.
///
/// # Errors
///
/// [`FamilyError`] if any member's line size differs from the stream's
/// or members disagree on associativity.
pub fn try_replay_conventional_family(
    l2_cfgs: &[CacheConfig],
    stream: &MissStream,
) -> Result<Vec<HierarchyStats>, FamilyError> {
    if l2_cfgs.is_empty() {
        return Ok(Vec::new());
    }
    let fw = FamilyWays::try_of(l2_cfgs, stream)?;
    if fw.ways == 1 {
        // Sort members by capacity (stably, so duplicates keep their
        // relative order) and scatter the ascending-order counters back.
        let mut order: Vec<usize> = (0..l2_cfgs.len()).collect();
        order.sort_by_key(|&i| l2_cfgs[i].size_bytes());
        let ascending: Vec<&CacheConfig> = order.iter().map(|&i| &l2_cfgs[i]).collect();
        let mut fam = DmConventionalFamily::new(&ascending);
        walk_events(&mut fam, stream);
        let counters = fam.counters();
        let mut out = vec![HierarchyStats::default(); l2_cfgs.len()];
        for (k, &i) in order.iter().enumerate() {
            out[i] = assemble(stream, counters[k]);
        }
        // Direct-mapped members have no replacement choice: no draws.
        flush_family(stream, &out, 0, 0, fam.liveness_total());
        return Ok(out);
    }
    fn run<const W: usize>(
        l2_cfgs: &[CacheConfig],
        stream: &MissStream,
        fw: FamilyWays,
    ) -> Vec<HierarchyStats> {
        let mut fam =
            ConventionalFamily::<W> { states: l2_cfgs.iter().map(L2State::new).collect(), fw };
        walk_events(&mut fam, stream);
        let out: Vec<HierarchyStats> = fam
            .states
            .iter()
            .map(|st| assemble(stream, (st.hits, st.misses, st.writebacks)))
            .collect();
        let mut live = Liveness::default();
        for st in &fam.states {
            live.merge(st.liveness());
        }
        flush_family(stream, &out, fam.states.iter().map(|st| st.lfsr_draws).sum(), 0, live);
        out
    }
    // Monomorphise the common associativities so the set scans unroll.
    Ok(match fw.ways {
        2 => run::<2>(l2_cfgs, stream, fw),
        4 => run::<4>(l2_cfgs, stream, fw),
        8 => run::<8>(l2_cfgs, stream, fw),
        _ => run::<0>(l2_cfgs, stream, fw),
    })
}

/// Panicking wrapper around [`try_replay_conventional_family`] for
/// callers that validate the family shape up front.
///
/// # Panics
///
/// Panics with the [`FamilyError`] message if the family is rejected.
pub fn replay_conventional_family(
    l2_cfgs: &[CacheConfig],
    stream: &MissStream,
) -> Vec<HierarchyStats> {
    try_replay_conventional_family(l2_cfgs, stream).unwrap_or_else(|e| panic!("{e}"))
}

/// Replays `stream` once through a whole family of exclusive
/// (victim-swap) L2s, returning one [`HierarchyStats`] per member of
/// `l2_cfgs`, in input order — each bit-identical to
/// [`replay_exclusive`](crate::filter::replay_exclusive) on the same
/// configuration. Every [`ReplacementKind`] is supported, and members
/// may mix policies.
///
/// # Errors
///
/// As [`try_replay_conventional_family`].
pub fn try_replay_exclusive_family(
    l2_cfgs: &[CacheConfig],
    stream: &MissStream,
) -> Result<Vec<HierarchyStats>, FamilyError> {
    if l2_cfgs.is_empty() {
        return Ok(Vec::new());
    }
    let fw = FamilyWays::try_of(l2_cfgs, stream)?;
    fn run<const W: usize>(
        l2_cfgs: &[CacheConfig],
        stream: &MissStream,
        fw: FamilyWays,
    ) -> Vec<HierarchyStats> {
        let sets = stream.l1_sets();
        let mut fam = ExclusiveFamily::<W> {
            members: l2_cfgs
                .iter()
                .map(|cfg| ExclusiveFamilyMember {
                    l2: L2State::new(cfg),
                    mirror_i: vec![false; sets],
                    mirror_d: vec![false; sets],
                })
                .collect(),
            fw,
            l1_set_mask: sets as u64 - 1,
        };
        walk_events(&mut fam, stream);
        let out: Vec<HierarchyStats> = fam
            .members
            .iter()
            .map(|m| assemble(stream, (m.l2.hits, m.l2.misses, m.l2.writebacks)))
            .collect();
        let mut live = Liveness::default();
        for m in &fam.members {
            live.merge(m.l2.liveness());
        }
        flush_family(
            stream,
            &out,
            fam.members.iter().map(|m| m.l2.lfsr_draws).sum(),
            fam.members.iter().map(|m| m.l2.swaps).sum(),
            live,
        );
        out
    }
    // Monomorphise the common associativities so the set scans unroll.
    Ok(match fw.ways {
        1 => run::<1>(l2_cfgs, stream, fw),
        2 => run::<2>(l2_cfgs, stream, fw),
        4 => run::<4>(l2_cfgs, stream, fw),
        8 => run::<8>(l2_cfgs, stream, fw),
        _ => run::<0>(l2_cfgs, stream, fw),
    })
}

/// Panicking wrapper around [`try_replay_exclusive_family`].
///
/// # Panics
///
/// Panics with the [`FamilyError`] message if the family is rejected.
pub fn replay_exclusive_family(
    l2_cfgs: &[CacheConfig],
    stream: &MissStream,
) -> Vec<HierarchyStats> {
    try_replay_exclusive_family(l2_cfgs, stream).unwrap_or_else(|e| panic!("{e}"))
}

/// The single-level "family": every member shares the L1-only statistics,
/// so the stream is walked once and the result cloned `members` times.
pub fn replay_single_family(stream: &MissStream, members: usize) -> Vec<HierarchyStats> {
    vec![replay_single(stream); members]
}

/// Validates that every segment of a stitched stream shares one L1
/// geometry — they must all have come from the same front-end.
fn assert_segments_stitchable(segments: &[MissStream]) {
    let first = &segments[0];
    for seg in segments {
        assert_eq!(seg.line_bytes(), first.line_bytes(), "segments must share a line size");
        assert_eq!(seg.l1_size_bytes(), first.l1_size_bytes(), "segments must share an L1 size");
    }
}

/// Flushes one segmented family pass's totals, mirroring
/// [`flush_family`] with the event count summed over the segments (the
/// stream was still decoded exactly once).
fn flush_family_segments(
    segments: &[MissStream],
    out: &[Vec<HierarchyStats>],
    draws: u64,
    swaps: u64,
    live: Liveness,
) {
    if !tlc_obs::ENABLED {
        return;
    }
    let totals = HierarchyStats {
        l2_hits: out.iter().flatten().map(|s| s.l2_hits).sum(),
        l2_misses: out.iter().flatten().map(|s| s.l2_misses).sum(),
        offchip_writebacks: out.iter().flatten().map(|s| s.offchip_writebacks).sum(),
        ..HierarchyStats::default()
    };
    let events: u64 = segments.iter().map(|s| s.len()).sum();
    crate::filter::flush_l2_counters(events, &totals, draws, swaps, live);
}

/// Replays a *stitched* sequence of segments through one family of
/// conventional L2s, returning per-segment, per-member statistics
/// (`out[segment][member]`, members in `l2_cfgs` input order).
///
/// The family state — slot arrays, replacement banks, per-member LFSRs —
/// is built **once** and persists across segments: segment `k` starts
/// from the (stale) contents segment `k-1` left behind, each segment's
/// warm-up prefix then refreshes that state before the counters reset
/// at the segment's own warm-up boundary. This is the L2 half of
/// stitched warming for sampled sweeps; a lone segment reproduces
/// [`replay_conventional_family`] bit-for-bit.
///
/// # Errors
///
/// As [`try_replay_conventional_family`].
///
/// # Panics
///
/// Panics if segments disagree on L1 geometry or `segments` is empty.
pub fn try_replay_conventional_family_segments(
    l2_cfgs: &[CacheConfig],
    segments: &[MissStream],
) -> Result<Vec<Vec<HierarchyStats>>, FamilyError> {
    assert!(!segments.is_empty(), "need at least one segment");
    assert_segments_stitchable(segments);
    if l2_cfgs.is_empty() {
        return Ok(vec![Vec::new(); segments.len()]);
    }
    let fw = FamilyWays::try_of(l2_cfgs, &segments[0])?;
    if fw.ways == 1 {
        let mut order: Vec<usize> = (0..l2_cfgs.len()).collect();
        order.sort_by_key(|&i| l2_cfgs[i].size_bytes());
        let ascending: Vec<&CacheConfig> = order.iter().map(|&i| &l2_cfgs[i]).collect();
        let mut fam = DmConventionalFamily::new(&ascending);
        let mut out = Vec::with_capacity(segments.len());
        for seg in segments {
            fam.reset_counters();
            {
                let _t = tlc_obs::HistTimer::start(tlc_obs::Hist::SampleSliceReplayNs);
                walk_events(&mut fam, seg);
            }
            let counters = fam.counters();
            let mut row = vec![HierarchyStats::default(); l2_cfgs.len()];
            for (k, &i) in order.iter().enumerate() {
                row[i] = assemble(seg, counters[k]);
            }
            out.push(row);
        }
        flush_family_segments(segments, &out, 0, 0, fam.liveness_total());
        return Ok(out);
    }
    fn run<const W: usize>(
        l2_cfgs: &[CacheConfig],
        segments: &[MissStream],
        fw: FamilyWays,
    ) -> Vec<Vec<HierarchyStats>> {
        let mut fam =
            ConventionalFamily::<W> { states: l2_cfgs.iter().map(L2State::new).collect(), fw };
        let mut out = Vec::with_capacity(segments.len());
        for seg in segments {
            fam.reset_counters();
            {
                let _t = tlc_obs::HistTimer::start(tlc_obs::Hist::SampleSliceReplayNs);
                walk_events(&mut fam, seg);
            }
            out.push(
                fam.states
                    .iter()
                    .map(|st| assemble(seg, (st.hits, st.misses, st.writebacks)))
                    .collect(),
            );
        }
        let mut live = Liveness::default();
        for st in &fam.states {
            live.merge(st.liveness());
        }
        flush_family_segments(
            segments,
            &out,
            fam.states.iter().map(|st| st.lfsr_draws).sum(),
            0,
            live,
        );
        out
    }
    Ok(match fw.ways {
        2 => run::<2>(l2_cfgs, segments, fw),
        4 => run::<4>(l2_cfgs, segments, fw),
        8 => run::<8>(l2_cfgs, segments, fw),
        _ => run::<0>(l2_cfgs, segments, fw),
    })
}

/// Panicking wrapper around [`try_replay_conventional_family_segments`].
///
/// # Panics
///
/// As [`try_replay_conventional_family_segments`], plus with the
/// [`FamilyError`] message if the family is rejected.
pub fn replay_conventional_family_segments(
    l2_cfgs: &[CacheConfig],
    segments: &[MissStream],
) -> Vec<Vec<HierarchyStats>> {
    try_replay_conventional_family_segments(l2_cfgs, segments).unwrap_or_else(|e| panic!("{e}"))
}

/// As [`try_replay_conventional_family_segments`] for a family of
/// exclusive (victim-swap) L2s: persistent slot arrays, replacement
/// banks, per-member fill-dirty mirrors, and LFSRs stitch across
/// segments; a lone segment reproduces [`replay_exclusive_family`]
/// bit-for-bit.
///
/// # Errors
///
/// As [`try_replay_conventional_family`].
///
/// # Panics
///
/// As [`try_replay_conventional_family_segments`].
pub fn try_replay_exclusive_family_segments(
    l2_cfgs: &[CacheConfig],
    segments: &[MissStream],
) -> Result<Vec<Vec<HierarchyStats>>, FamilyError> {
    assert!(!segments.is_empty(), "need at least one segment");
    assert_segments_stitchable(segments);
    if l2_cfgs.is_empty() {
        return Ok(vec![Vec::new(); segments.len()]);
    }
    let fw = FamilyWays::try_of(l2_cfgs, &segments[0])?;
    fn run<const W: usize>(
        l2_cfgs: &[CacheConfig],
        segments: &[MissStream],
        fw: FamilyWays,
    ) -> Vec<Vec<HierarchyStats>> {
        let sets = segments[0].l1_sets();
        let mut fam = ExclusiveFamily::<W> {
            members: l2_cfgs
                .iter()
                .map(|cfg| ExclusiveFamilyMember {
                    l2: L2State::new(cfg),
                    mirror_i: vec![false; sets],
                    mirror_d: vec![false; sets],
                })
                .collect(),
            fw,
            l1_set_mask: sets as u64 - 1,
        };
        let mut out = Vec::with_capacity(segments.len());
        for seg in segments {
            fam.reset_counters();
            {
                let _t = tlc_obs::HistTimer::start(tlc_obs::Hist::SampleSliceReplayNs);
                walk_events(&mut fam, seg);
            }
            out.push(
                fam.members
                    .iter()
                    .map(|m| assemble(seg, (m.l2.hits, m.l2.misses, m.l2.writebacks)))
                    .collect(),
            );
        }
        let mut live = Liveness::default();
        for m in &fam.members {
            live.merge(m.l2.liveness());
        }
        flush_family_segments(
            segments,
            &out,
            fam.members.iter().map(|m| m.l2.lfsr_draws).sum(),
            fam.members.iter().map(|m| m.l2.swaps).sum(),
            live,
        );
        out
    }
    Ok(match fw.ways {
        1 => run::<1>(l2_cfgs, segments, fw),
        2 => run::<2>(l2_cfgs, segments, fw),
        4 => run::<4>(l2_cfgs, segments, fw),
        8 => run::<8>(l2_cfgs, segments, fw),
        _ => run::<0>(l2_cfgs, segments, fw),
    })
}

/// Panicking wrapper around [`try_replay_exclusive_family_segments`].
///
/// # Panics
///
/// As [`try_replay_conventional_family_segments`], plus with the
/// [`FamilyError`] message if the family is rejected.
pub fn replay_exclusive_family_segments(
    l2_cfgs: &[CacheConfig],
    segments: &[MissStream],
) -> Vec<Vec<HierarchyStats>> {
    try_replay_exclusive_family_segments(l2_cfgs, segments).unwrap_or_else(|e| panic!("{e}"))
}

/// Per-segment single-level statistics: there is no L2 state to stitch,
/// so each segment replays independently.
pub fn replay_single_family_segments(
    segments: &[MissStream],
    members: usize,
) -> Vec<Vec<HierarchyStats>> {
    segments
        .iter()
        .map(|seg| {
            let _t = tlc_obs::HistTimer::start(tlc_obs::Hist::SampleSliceReplayNs);
            replay_single_family(seg, members)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::config::Associativity;
    use crate::filter::{replay_conventional, replay_exclusive, L1FrontEnd};
    use crate::hierarchy::MemorySystem;
    use tlc_trace::spec::SpecBenchmark;
    use tlc_trace::InstructionSource;

    fn l1_cfg(bytes: u64) -> CacheConfig {
        CacheConfig::new(bytes, 16, Associativity::Direct, ReplacementKind::PseudoRandom).unwrap()
    }

    fn l2_cfg(bytes: u64, ways: u32) -> CacheConfig {
        l2_policy_cfg(bytes, ways, ReplacementKind::PseudoRandom)
    }

    fn l2_policy_cfg(bytes: u64, ways: u32, repl: ReplacementKind) -> CacheConfig {
        let assoc = if ways == 1 { Associativity::Direct } else { Associativity::SetAssoc(ways) };
        CacheConfig::new(bytes, 16, assoc, repl).unwrap()
    }

    fn capture(b: SpecBenchmark, l1_bytes: u64, warm: u64, n: u64) -> MissStream {
        let mut fe = L1FrontEnd::new(l1_cfg(l1_bytes));
        let mut w = b.workload();
        for _ in 0..warm {
            fe.access_instruction(&w.next_instruction_opt().unwrap());
        }
        fe.reset_stats();
        for _ in 0..n {
            fe.access_instruction(&w.next_instruction_opt().unwrap());
        }
        fe.finish(b.name())
    }

    #[test]
    fn conventional_family_matches_scalar_backend() {
        for ways in [1u32, 4] {
            let stream = capture(SpecBenchmark::Gcc1, 1024, 2_000, 8_000);
            let cfgs: Vec<CacheConfig> =
                [2048u64, 4096, 8192, 32768].map(|b| l2_cfg(b, ways)).to_vec();
            let batched = replay_conventional_family(&cfgs, &stream);
            for (cfg, got) in cfgs.iter().zip(&batched) {
                assert_eq!(*got, replay_conventional(*cfg, &stream), "ways={ways} {cfg}");
            }
        }
    }

    #[test]
    fn exclusive_family_matches_scalar_backend() {
        for ways in [1u32, 4] {
            let stream = capture(SpecBenchmark::Li, 1024, 2_000, 8_000);
            let cfgs: Vec<CacheConfig> =
                [2048u64, 4096, 8192, 32768].map(|b| l2_cfg(b, ways)).to_vec();
            let batched = replay_exclusive_family(&cfgs, &stream);
            for (cfg, got) in cfgs.iter().zip(&batched) {
                assert_eq!(*got, replay_exclusive(*cfg, &stream), "ways={ways} {cfg}");
            }
        }
    }

    #[test]
    fn family_matches_scalar_for_every_policy() {
        let conv_stream = capture(SpecBenchmark::Gcc1, 1024, 2_000, 8_000);
        let excl_stream = capture(SpecBenchmark::Li, 1024, 2_000, 8_000);
        for repl in ReplacementKind::ALL {
            for ways in [2u32, 4] {
                let cfgs: Vec<CacheConfig> =
                    [2048u64, 8192, 32768].map(|b| l2_policy_cfg(b, ways, repl)).to_vec();
                let conv = replay_conventional_family(&cfgs, &conv_stream);
                let excl = replay_exclusive_family(&cfgs, &excl_stream);
                for (cfg, (c, e)) in cfgs.iter().zip(conv.iter().zip(&excl)) {
                    assert_eq!(*c, replay_conventional(*cfg, &conv_stream), "{repl} {cfg}");
                    assert_eq!(*e, replay_exclusive(*cfg, &excl_stream), "{repl} {cfg}");
                }
            }
        }
    }

    #[test]
    fn mixed_policy_family_matches_scalar() {
        // Members carry their own replacement banks, so one family can
        // mix policies freely.
        let stream = capture(SpecBenchmark::Espresso, 1024, 1_000, 6_000);
        let cfgs: Vec<CacheConfig> = ReplacementKind::ALL
            .iter()
            .enumerate()
            .map(|(i, &r)| l2_policy_cfg(2048 << i, 4, r))
            .collect();
        let batched = replay_conventional_family(&cfgs, &stream);
        for (cfg, got) in cfgs.iter().zip(&batched) {
            assert_eq!(*got, replay_conventional(*cfg, &stream), "{cfg}");
        }
    }

    #[test]
    fn dm_fast_path_handles_unsorted_and_duplicate_sizes() {
        let stream = capture(SpecBenchmark::Espresso, 1024, 1_000, 6_000);
        let cfgs: Vec<CacheConfig> = [8192u64, 2048, 8192, 4096].map(|b| l2_cfg(b, 1)).to_vec();
        let batched = replay_conventional_family(&cfgs, &stream);
        for (cfg, got) in cfgs.iter().zip(&batched) {
            assert_eq!(*got, replay_conventional(*cfg, &stream), "{cfg}");
        }
        assert_eq!(batched[0], batched[2], "duplicate sizes share statistics");
    }

    #[test]
    fn dm_fast_path_misses_are_monotone_in_size() {
        let stream = capture(SpecBenchmark::Tomcatv, 1024, 1_000, 8_000);
        let cfgs: Vec<CacheConfig> =
            [2048u64, 4096, 8192, 16384, 32768].map(|b| l2_cfg(b, 1)).to_vec();
        let stats = replay_conventional_family(&cfgs, &stream);
        for pair in stats.windows(2) {
            assert!(
                pair[1].l2_misses <= pair[0].l2_misses,
                "a bigger DM L2 can never miss more on the same stream"
            );
        }
    }

    #[test]
    fn warmup_boundary_resets_family_counters() {
        let stream = capture(SpecBenchmark::Fpppp, 1024, 3_000, 3_000);
        for cfgs in [[l2_cfg(4096, 4), l2_cfg(16384, 4)], [l2_cfg(4096, 1), l2_cfg(16384, 1)]] {
            let conv = replay_conventional_family(&cfgs, &stream);
            let excl = replay_exclusive_family(&cfgs, &stream);
            for (cfg, (c, e)) in cfgs.iter().zip(conv.iter().zip(&excl)) {
                assert_eq!(*c, replay_conventional(*cfg, &stream));
                assert_eq!(*e, replay_exclusive(*cfg, &stream));
                assert_eq!(c.instructions, 3_000);
            }
        }
    }

    #[test]
    fn empty_family_and_empty_window() {
        let stream = capture(SpecBenchmark::Li, 1024, 500, 0);
        assert!(replay_conventional_family(&[], &stream).is_empty());
        assert!(replay_exclusive_family(&[], &stream).is_empty());
        let cfgs = [l2_cfg(4096, 4)];
        assert_eq!(replay_conventional_family(&cfgs, &stream)[0], HierarchyStats::default());
        assert_eq!(replay_exclusive_family(&cfgs, &stream)[0], HierarchyStats::default());
        assert_eq!(replay_single_family(&stream, 3), vec![HierarchyStats::default(); 3]);
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn rejects_mixed_associativity() {
        let stream = capture(SpecBenchmark::Li, 1024, 500, 500);
        let _ = replay_conventional_family(&[l2_cfg(4096, 4), l2_cfg(8192, 2)], &stream);
    }

    #[test]
    fn try_variants_return_typed_errors_instead_of_panicking() {
        let stream = capture(SpecBenchmark::Li, 1024, 500, 500);
        let mixed = [l2_cfg(4096, 4), l2_cfg(8192, 2)];
        assert_eq!(
            try_replay_conventional_family(&mixed, &stream),
            Err(FamilyError::MixedWays { first: 4, other: 2 })
        );
        assert_eq!(
            try_replay_exclusive_family(&mixed, &stream),
            Err(FamilyError::MixedWays { first: 4, other: 2 })
        );
        let wide_line =
            CacheConfig::new(4096, 32, Associativity::SetAssoc(4), ReplacementKind::Lru).unwrap();
        assert_eq!(
            try_replay_conventional_family(&[wide_line], &stream),
            Err(FamilyError::LineSize { member: 32, stream: 16 })
        );
    }

    /// Drives a plain [`Cache`] with the conventional back-end's exact
    /// call order — the reference for the family's liveness tallies.
    struct ScalarConvSink {
        l2: Cache,
    }

    impl EventSink for ScalarConvSink {
        fn consume(&mut self, _f: bool, line: LineAddr, victim: Option<(LineAddr, bool)>) {
            if !self.l2.access(line, false) {
                self.l2.fill_after_miss(line, false);
            }
            if let Some((vl, written)) = victim {
                if written {
                    self.l2.merge_if_present(vl, true);
                }
            }
        }

        fn reset_counters(&mut self) {}
    }

    #[test]
    fn family_liveness_matches_scalar_cache() {
        if !tlc_obs::ENABLED {
            return;
        }
        let stream = capture(SpecBenchmark::Gcc1, 1024, 2_000, 8_000);
        for repl in ReplacementKind::ALL {
            let cfgs = [l2_policy_cfg(4096, 4, repl), l2_policy_cfg(16384, 4, repl)];
            let fw = FamilyWays::try_of(&cfgs, &stream).unwrap();
            let mut fam =
                ConventionalFamily::<4> { states: cfgs.iter().map(L2State::new).collect(), fw };
            walk_events(&mut fam, &stream);
            for (cfg, st) in cfgs.iter().zip(&fam.states) {
                let mut scalar = ScalarConvSink { l2: Cache::new(*cfg) };
                walk_events(&mut scalar, &stream);
                let got = st.liveness();
                assert_eq!(got, scalar.l2.liveness(), "{repl} {cfg}");
                assert_eq!(got.fills, got.dead_on_arrival + got.live_fills, "{repl} {cfg}");
                assert!(got.multi_hit <= got.live_fills, "{repl} {cfg}");
            }
        }
    }

    #[test]
    fn dm_family_liveness_matches_scalar_caches() {
        if !tlc_obs::ENABLED {
            return;
        }
        let stream = capture(SpecBenchmark::Tomcatv, 1024, 1_000, 8_000);
        let cfgs = [l2_cfg(2048, 1), l2_cfg(8192, 1)];
        let ascending: Vec<&CacheConfig> = cfgs.iter().collect();
        let mut fam = DmConventionalFamily::new(&ascending);
        walk_events(&mut fam, &stream);
        let mut expected = Liveness::default();
        for cfg in &cfgs {
            let mut scalar = ScalarConvSink { l2: Cache::new(*cfg) };
            walk_events(&mut scalar, &stream);
            expected.merge(scalar.l2.liveness());
        }
        assert_eq!(fam.liveness_total(), expected);
    }
}
