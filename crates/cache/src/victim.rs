//! Victim caching — the degenerate case of exclusive two-level caching.
//!
//! The paper notes (§8) that for an L2 smaller than the L1 "the
//! configuration becomes a shared direct-mapped victim cache [4]" —
//! Jouppi's 1990 victim cache. [`VictimCacheSystem`] implements the
//! classic form: a direct-mapped L1 backed by a small fully-associative
//! buffer holding recent L1 victims; on an L1 miss that hits the buffer,
//! the two lines swap. The buffer is shared between the I and D sides
//! (the "shared" victim cache of the quote).

use crate::cache::Cache;
use crate::config::{Associativity, CacheConfig, ConfigError, ReplacementKind};
use crate::hierarchy::{MemorySystem, ServiceLevel};
use crate::stats::HierarchyStats;
use tlc_trace::{AccessKind, MemRef};

/// Split direct-mapped L1 caches plus a small shared fully-associative
/// victim buffer.
///
/// Buffer hits are counted as `l2_hits` in [`HierarchyStats`] — the
/// buffer plays the role of an (extremely small) second level.
///
/// # Examples
///
/// ```
/// use tlc_cache::{Associativity, CacheConfig, MemorySystem, ServiceLevel, VictimCacheSystem};
/// use tlc_trace::{Addr, MemRef};
///
/// # fn main() -> Result<(), tlc_cache::ConfigError> {
/// let l1 = CacheConfig::paper(1024, Associativity::Direct)?;
/// let mut sys = VictimCacheSystem::new(l1, 4)?;
/// let a = Addr::new(0x0000);
/// let b = Addr::new(0x0400); // conflicts with `a` in a 1KB L1
/// sys.access(MemRef::load(a));
/// sys.access(MemRef::load(b));                      // evicts a → buffer
/// assert_eq!(sys.access(MemRef::load(a)), ServiceLevel::L2); // buffer hit
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VictimCacheSystem {
    l1i: Cache,
    l1d: Cache,
    buffer: Cache,
    line_bytes: u64,
    stats: HierarchyStats,
}

impl VictimCacheSystem {
    /// Builds the system with a `buffer_lines`-entry victim buffer.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `buffer_lines` is not a power of two
    /// (the buffer is built as a fully-associative LRU cache).
    pub fn new(l1_cfg: CacheConfig, buffer_lines: u64) -> Result<Self, ConfigError> {
        let buffer_cfg = CacheConfig::new(
            buffer_lines * l1_cfg.line_bytes(),
            l1_cfg.line_bytes(),
            Associativity::Full,
            ReplacementKind::Lru,
        )?;
        Ok(VictimCacheSystem {
            l1i: Cache::new(l1_cfg),
            l1d: Cache::new(l1_cfg),
            buffer: Cache::new(buffer_cfg),
            line_bytes: l1_cfg.line_bytes(),
            stats: HierarchyStats::default(),
        })
    }

    /// The victim buffer.
    pub fn buffer(&self) -> &Cache {
        &self.buffer
    }

    fn stash_victim(&mut self, victim: crate::cache::Evicted) {
        if let Some(ev) = self.buffer.fill(victim.line, victim.dirty) {
            if ev.dirty {
                self.stats.offchip_writebacks += 1;
            }
        }
    }
}

impl MemorySystem for VictimCacheSystem {
    fn access(&mut self, r: MemRef) -> ServiceLevel {
        let line = r.addr.line(self.line_bytes);
        let is_write = r.kind == AccessKind::Store;
        let (l1, miss_ctr) = match r.kind {
            AccessKind::InstrFetch => {
                self.stats.instructions += 1;
                (&mut self.l1i, &mut self.stats.l1i_misses)
            }
            AccessKind::Load | AccessKind::Store => {
                self.stats.data_refs += 1;
                (&mut self.l1d, &mut self.stats.l1d_misses)
            }
        };
        if l1.access(line, is_write) {
            return ServiceLevel::L1;
        }
        *miss_ctr += 1;

        if let Some((dirty, _slot)) = self.buffer.extract(line) {
            // Buffer hit: swap with the L1 victim.
            self.stats.l2_hits += 1;
            let l1 = if r.kind == AccessKind::InstrFetch { &mut self.l1i } else { &mut self.l1d };
            if let Some(v) = l1.fill(line, is_write || dirty) {
                self.stash_victim(v);
            }
            ServiceLevel::L2
        } else {
            self.stats.l2_misses += 1;
            let l1 = if r.kind == AccessKind::InstrFetch { &mut self.l1i } else { &mut self.l1d };
            if let Some(v) = l1.fill(line, is_write) {
                self.stash_victim(v);
            }
            ServiceLevel::Memory
        }
    }

    fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.buffer.reset_stats();
    }

    fn invalidate_line(&mut self, line: tlc_trace::LineAddr) -> u32 {
        let mut purged = 0;
        purged += self.l1i.invalidate(line) as u32;
        purged += self.l1d.invalidate(line) as u32;
        purged += self.buffer.invalidate(line) as u32;
        purged
    }

    fn describe(&self) -> String {
        format!(
            "victim-cache: split L1 {} + {}-line shared victim buffer",
            self.l1i.config(),
            self.buffer.config().lines()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlc_trace::Addr;

    fn sys(buffer_lines: u64) -> VictimCacheSystem {
        VictimCacheSystem::new(
            CacheConfig::paper(1024, Associativity::Direct).unwrap(),
            buffer_lines,
        )
        .unwrap()
    }

    #[test]
    fn conflict_pair_ping_pongs_in_buffer() {
        let mut s = sys(4);
        let a = Addr::new(0x0000);
        let b = Addr::new(0x0400);
        s.access(MemRef::load(a));
        s.access(MemRef::load(b));
        let mut buffer_hits = 0;
        for _ in 0..50 {
            for addr in [a, b] {
                if s.access(MemRef::load(addr)) == ServiceLevel::L2 {
                    buffer_hits += 1;
                }
            }
        }
        assert_eq!(buffer_hits, 100, "all post-warmup conflict misses should hit the buffer");
        assert_eq!(s.stats().l2_misses, 2);
    }

    #[test]
    fn buffer_capacity_limits_coverage() {
        // Five conflicting lines with a 4-entry buffer: the rotation set
        // (1 in L1 + 5 candidates for 4 slots) doesn't fit, so some misses
        // still go off-chip.
        let mut s = sys(4);
        let lines: Vec<Addr> = (0..6).map(|i| Addr::new(i * 0x400)).collect();
        for _ in 0..20 {
            for &a in &lines {
                s.access(MemRef::load(a));
            }
        }
        assert!(s.stats().l2_misses > 6, "6 lines cannot all be covered by a 4-entry buffer");
    }

    #[test]
    fn buffer_shared_between_i_and_d() {
        let mut s = sys(4);
        let a = Addr::new(0x0000);
        let b = Addr::new(0x0400);
        // Fill the *instruction* side conflict pair.
        s.access(MemRef::fetch(a));
        s.access(MemRef::fetch(b)); // victim a → shared buffer
        assert_eq!(s.access(MemRef::fetch(a)), ServiceLevel::L2);
        assert!(s.stats().l1i_misses >= 3);
    }

    #[test]
    fn dirty_victim_roundtrip_preserves_dirt() {
        let mut s = sys(2);
        let a = Addr::new(0x0000);
        let b = Addr::new(0x0400);
        s.access(MemRef::store(a)); // dirty a in L1
        s.access(MemRef::load(b)); // dirty a → buffer
        s.access(MemRef::load(a)); // back to L1, still dirty
        s.access(MemRef::load(b)); // dirty a → buffer again
                                   // Flood the buffer to force a's eviction.
        for i in 2..8u64 {
            s.access(MemRef::load(Addr::new(i * 0x400)));
        }
        assert!(s.stats().offchip_writebacks >= 1);
    }

    #[test]
    fn rejects_non_power_of_two_buffer() {
        let l1 = CacheConfig::paper(1024, Associativity::Direct).unwrap();
        assert!(VictimCacheSystem::new(l1, 3).is_err());
    }

    #[test]
    fn describe_mentions_buffer() {
        assert!(sys(4).describe().contains("victim"));
    }
}
