//! Cache geometry and policy configuration.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Cache associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Associativity {
    /// One way per set (the paper's first-level caches).
    Direct,
    /// `n`-way set-associative (the paper's second-level caches use 4).
    SetAssoc(u32),
    /// Every line in one set (victim caches).
    Full,
}

impl fmt::Display for Associativity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Associativity::Direct => f.write_str("direct-mapped"),
            Associativity::SetAssoc(n) => write!(f, "{n}-way"),
            Associativity::Full => f.write_str("fully-associative"),
        }
    }
}

/// Replacement policy for set-associative caches.
///
/// Direct-mapped caches have no replacement choice; the policy is ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementKind {
    /// Least-recently-used.
    Lru,
    /// First-in first-out.
    Fifo,
    /// Pseudo-random via a 16-bit LFSR — the policy the paper used for its
    /// set-associative second-level caches (§2.1).
    PseudoRandom,
    /// Tree-based pseudo-LRU (ways must be a power of two ≤ 64).
    TreePlru,
    /// Static re-reference interval prediction (SRRIP-HP): a 2-bit RRPV
    /// per way. Fills predict a *long* re-reference interval (RRPV 2),
    /// hits promote to *near-immediate* (RRPV 0), and the victim is the
    /// lowest-indexed way at the maximum RRPV (3), ageing every way until
    /// one reaches it.
    Srrip,
}

impl ReplacementKind {
    /// Every variant, in declaration order — the policy axis for sweeps
    /// and samplers.
    pub const ALL: [ReplacementKind; 5] = [
        ReplacementKind::Lru,
        ReplacementKind::Fifo,
        ReplacementKind::PseudoRandom,
        ReplacementKind::TreePlru,
        ReplacementKind::Srrip,
    ];
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReplacementKind::Lru => "LRU",
            ReplacementKind::Fifo => "FIFO",
            ReplacementKind::PseudoRandom => "pseudo-random",
            ReplacementKind::TreePlru => "tree-PLRU",
            ReplacementKind::Srrip => "SRRIP",
        })
    }
}

/// Error building a [`CacheConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A size or line length was not a power of two.
    NotPowerOfTwo {
        /// Which quantity was invalid.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The cache cannot hold even one line per way.
    TooSmall {
        /// Total size requested.
        size_bytes: u64,
        /// Minimum required for the requested geometry.
        required: u64,
    },
    /// The way count was invalid (zero, not a power of two, or exceeding
    /// the line count).
    BadWays(u32),
    /// Tree-PLRU requires a power-of-two way count ≤ 64.
    PlruWays(u32),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            ConfigError::TooSmall { size_bytes, required } => {
                write!(
                    f,
                    "cache of {size_bytes} bytes smaller than one line per way ({required} bytes)"
                )
            }
            ConfigError::BadWays(w) => write!(f, "invalid way count {w}"),
            ConfigError::PlruWays(w) => {
                write!(f, "tree-PLRU needs a power-of-two way count <= 64, got {w}")
            }
        }
    }
}

impl Error for ConfigError {}

/// Geometry and policy of one cache.
///
/// # Examples
///
/// ```
/// use tlc_cache::{Associativity, CacheConfig, ReplacementKind};
///
/// # fn main() -> Result<(), tlc_cache::ConfigError> {
/// let l2 = CacheConfig::new(64 * 1024, 16, Associativity::SetAssoc(4),
///                           ReplacementKind::PseudoRandom)?;
/// assert_eq!(l2.ways(), 4);
/// assert_eq!(l2.num_sets(), 1024);
/// assert_eq!(l2.lines(), 4096);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    size_bytes: u64,
    line_bytes: u64,
    assoc: Associativity,
    replacement: ReplacementKind,
}

impl CacheConfig {
    /// Builds and validates a configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if sizes are not powers of two, the cache
    /// is smaller than one line per way, or the way count is invalid.
    pub fn new(
        size_bytes: u64,
        line_bytes: u64,
        assoc: Associativity,
        replacement: ReplacementKind,
    ) -> Result<Self, ConfigError> {
        if !size_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo { what: "cache size", value: size_bytes });
        }
        if !line_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo { what: "line size", value: line_bytes });
        }
        let lines = size_bytes / line_bytes;
        if lines == 0 {
            return Err(ConfigError::TooSmall { size_bytes, required: line_bytes });
        }
        let ways = match assoc {
            Associativity::Direct => 1,
            Associativity::Full => {
                let l = lines;
                if l > u32::MAX as u64 {
                    return Err(ConfigError::BadWays(u32::MAX));
                }
                l as u32
            }
            Associativity::SetAssoc(n) => n,
        };
        if ways == 0 || !ways.is_power_of_two() || ways as u64 > lines {
            return Err(ConfigError::BadWays(ways));
        }
        if replacement == ReplacementKind::TreePlru && (ways > 64 || !ways.is_power_of_two()) {
            return Err(ConfigError::PlruWays(ways));
        }
        Ok(CacheConfig { size_bytes, line_bytes, assoc, replacement })
    }

    /// The paper's standard configuration: 16-byte lines, the given size
    /// and associativity, pseudo-random replacement.
    ///
    /// # Errors
    ///
    /// Same as [`CacheConfig::new`].
    pub fn paper(size_bytes: u64, assoc: Associativity) -> Result<Self, ConfigError> {
        CacheConfig::new(size_bytes, 16, assoc, ReplacementKind::PseudoRandom)
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Line length in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Associativity.
    pub fn assoc(&self) -> Associativity {
        self.assoc
    }

    /// Replacement policy.
    pub fn replacement(&self) -> ReplacementKind {
        self.replacement
    }

    /// Ways per set.
    pub fn ways(&self) -> u32 {
        match self.assoc {
            Associativity::Direct => 1,
            Associativity::Full => self.lines() as u32,
            Associativity::SetAssoc(n) => n,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.lines() / self.ways() as u64
    }

    /// Total line count.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kb = self.size_bytes as f64 / 1024.0;
        write!(f, "{kb}KB {} ({}B lines, {})", self.assoc, self.line_bytes, self.replacement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_direct() {
        let c = CacheConfig::paper(8 * 1024, Associativity::Direct).unwrap();
        assert_eq!(c.ways(), 1);
        assert_eq!(c.lines(), 512);
        assert_eq!(c.num_sets(), 512);
    }

    #[test]
    fn geometry_set_assoc() {
        let c = CacheConfig::paper(8 * 1024, Associativity::SetAssoc(4)).unwrap();
        assert_eq!(c.ways(), 4);
        assert_eq!(c.num_sets(), 128);
    }

    #[test]
    fn geometry_full() {
        let c = CacheConfig::paper(1024, Associativity::Full).unwrap();
        assert_eq!(c.ways(), 64);
        assert_eq!(c.num_sets(), 1);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            CacheConfig::paper(3000, Associativity::Direct),
            Err(ConfigError::NotPowerOfTwo { what: "cache size", .. })
        ));
        assert!(matches!(
            CacheConfig::new(1024, 24, Associativity::Direct, ReplacementKind::Lru),
            Err(ConfigError::NotPowerOfTwo { what: "line size", .. })
        ));
    }

    #[test]
    fn rejects_too_many_ways() {
        // 1KB of 16B lines = 64 lines; 128 ways impossible.
        assert!(matches!(
            CacheConfig::paper(1024, Associativity::SetAssoc(128)),
            Err(ConfigError::BadWays(128))
        ));
    }

    #[test]
    fn rejects_non_power_of_two_ways() {
        assert!(matches!(
            CacheConfig::paper(1024, Associativity::SetAssoc(3)),
            Err(ConfigError::BadWays(3))
        ));
    }

    #[test]
    fn rejects_tiny_cache() {
        assert!(matches!(
            CacheConfig::new(8, 16, Associativity::Direct, ReplacementKind::Lru),
            Err(ConfigError::TooSmall { .. })
        ));
    }

    #[test]
    fn plru_way_limit() {
        assert!(CacheConfig::new(4096, 16, Associativity::Full, ReplacementKind::TreePlru).is_err());
        assert!(CacheConfig::new(1024, 16, Associativity::Full, ReplacementKind::TreePlru).is_ok());
    }

    #[test]
    fn error_messages() {
        let e = CacheConfig::paper(3000, Associativity::Direct).unwrap_err();
        assert!(e.to_string().contains("power of two"));
        let e = CacheConfig::paper(1024, Associativity::SetAssoc(3)).unwrap_err();
        assert!(e.to_string().contains("way count"));
    }

    #[test]
    fn display() {
        let c = CacheConfig::paper(64 * 1024, Associativity::SetAssoc(4)).unwrap();
        assert_eq!(c.to_string(), "64KB 4-way (16B lines, pseudo-random)");
    }
}
