//! Explicit board-level (off-chip) cache — the third level the paper
//! summarises as a flat 50ns service time.
//!
//! §2.1 chooses "off-chip miss service times of 50ns and 200ns...
//! corresponding to systems with and without a board-level cache", and
//! §8 closes with the multiprocessor remark: "inclusion between the sum
//! of their contents and a third level of off-chip caching can still be
//! maintained ... by eliminating on-chip cache lines which are not
//! present off-chip."
//!
//! [`BoardCache`] models that third level explicitly: a large SRAM cache
//! probed on every on-chip miss. Its evictions are reported back so the
//! caller can purge the on-chip copies — the
//! [`MemorySystem::invalidate_line`](crate::MemorySystem) hook — keeping
//! the §8 inclusion property. The `board` exhibit of the `repro` harness
//! uses it to measure how good the paper's flat-50ns approximation is.

use crate::cache::Cache;
use crate::config::{Associativity, CacheConfig, ConfigError, ReplacementKind};
use crate::stats::CacheStats;
use tlc_trace::LineAddr;

/// Outcome of one board-cache probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoardOutcome {
    /// Whether the line was present on the board.
    pub hit: bool,
    /// Line evicted by the fill on a miss, if any. The caller must purge
    /// it from the on-chip hierarchy to maintain inclusion (§8).
    pub evicted: Option<LineAddr>,
}

/// A large board-level cache behind the chip. See the module docs.
///
/// # Examples
///
/// ```
/// use tlc_cache::BoardCache;
/// use tlc_trace::LineAddr;
///
/// # fn main() -> Result<(), tlc_cache::ConfigError> {
/// let mut board = BoardCache::new(512 * 1024, 2, 16)?;
/// let miss = board.access(LineAddr(42));
/// assert!(!miss.hit);
/// let hit = board.access(LineAddr(42));
/// assert!(hit.hit);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BoardCache {
    cache: Cache,
    stats: CacheStats,
}

impl BoardCache {
    /// Builds a board cache of `size_bytes` with `ways` ways and the
    /// given line size (must match the on-chip hierarchy's).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid geometry.
    pub fn new(size_bytes: u64, ways: u32, line_bytes: u64) -> Result<Self, ConfigError> {
        let assoc = if ways == 1 { Associativity::Direct } else { Associativity::SetAssoc(ways) };
        let cfg = CacheConfig::new(size_bytes, line_bytes, assoc, ReplacementKind::PseudoRandom)?;
        Ok(BoardCache { cache: Cache::new(cfg), stats: CacheStats::default() })
    }

    /// Probes the board for `line`; on a miss the line is fetched from
    /// DRAM and filled (possibly evicting another line — see
    /// [`BoardOutcome::evicted`]).
    pub fn access(&mut self, line: LineAddr) -> BoardOutcome {
        self.stats.accesses += 1;
        if self.cache.access(line, false) {
            self.stats.hits += 1;
            return BoardOutcome { hit: true, evicted: None };
        }
        let evicted = self.cache.fill(line, false).map(|e| {
            self.stats.evictions += 1;
            e.line
        });
        BoardOutcome { hit: false, evicted }
    }

    /// Accumulated statistics (accesses = on-chip misses seen).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Whether `line` is currently on the board.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.cache.contains(line)
    }

    /// The board cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        self.cache.config()
    }
}

/// Average off-chip service time implied by a board hit ratio: the
/// weighted mix of the paper's two operating points (50ns board hit,
/// 200ns DRAM access).
pub fn effective_offchip_ns(board_hit_ratio: f64, board_ns: f64, dram_ns: f64) -> f64 {
    assert!((0.0..=1.0).contains(&board_hit_ratio), "hit ratio must be a probability");
    board_hit_ratio * board_ns + (1.0 - board_hit_ratio) * dram_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn probe_then_hit() {
        let mut b = BoardCache::new(1024, 2, 16).expect("valid");
        assert!(!b.access(line(7)).hit);
        assert!(b.access(line(7)).hit);
        assert_eq!(b.stats().accesses, 2);
        assert_eq!(b.stats().hits, 1);
        assert!(b.contains(line(7)));
    }

    #[test]
    fn eviction_reported_for_inclusion_maintenance() {
        // 4-line direct-mapped board: lines 0 and 4 conflict.
        let mut b = BoardCache::new(64, 1, 16).expect("valid");
        b.access(line(0));
        let out = b.access(line(4));
        assert!(!out.hit);
        assert_eq!(out.evicted, Some(line(0)), "the displaced line must be reported");
        assert!(!b.contains(line(0)));
    }

    #[test]
    fn effective_offchip_interpolates() {
        assert_eq!(effective_offchip_ns(1.0, 50.0, 200.0), 50.0);
        assert_eq!(effective_offchip_ns(0.0, 50.0, 200.0), 200.0);
        assert!((effective_offchip_ns(0.8, 50.0, 200.0) - 80.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_ratio() {
        let _ = effective_offchip_ns(1.5, 50.0, 200.0);
    }

    #[test]
    fn large_board_captures_working_set() {
        let mut b = BoardCache::new(64 * 1024, 2, 16).expect("valid");
        // 32KB working set fits: second pass all hits.
        for pass in 0..2 {
            for l in 0..2048u64 {
                let out = b.access(line(l));
                if pass == 1 {
                    assert!(out.hit, "line {l} should hit on the second pass");
                }
            }
        }
    }
}
