//! Miss-stream filtering: simulate the L1 once, fan every L2 over its
//! miss/victim event stream.
//!
//! ## Why this is sound
//!
//! Every hierarchy in this crate fills the requested line into the L1 on
//! *every* L1 miss — whether the line came from the L2 or from off-chip
//! ([`SingleLevel`](crate::SingleLevel),
//! [`ConventionalTwoLevel`](crate::ConventionalTwoLevel), and the
//! exclusive policy's two miss paths all do). The L1's *contents
//! trajectory* (which tags occupy which sets, and hence which accesses
//! miss and which victims are displaced) is therefore completely
//! determined by the reference stream and the L1 geometry — never by the
//! L2. A design-space sweep can simulate the L1 once per distinct front
//! end, record the miss/victim events, and replay only those events
//! through each L2 configuration.
//!
//! One subtlety: in the exclusive hierarchy an L1 fill's *dirty bit* does
//! depend on L2 state (an L1-miss/L2-hit fills with `is_write || dirty`,
//! where `dirty` came out of the L2 extract). The front-end therefore
//! records only the L2-independent, store-only component
//! ([`VictimLine::written`](tlc_trace::VictimLine)); the exclusive
//! back-end reconstructs the exact dirty bit with a per-L1-set mirror of
//! "was the current resident filled from a dirty L2 line" — see
//! [`replay_exclusive`]. The conventional and single-level hierarchies
//! fill the L1 with `is_write` only, so for them the recorded bit *is*
//! the dirty bit.
//!
//! The L2's replacement state (including its pseudo-random LFSR) is
//! driven by exactly the same call sequence as in the monolithic
//! hierarchies, so every statistic is bit-identical — the equivalence
//! suite in `tests/arena_equivalence.rs` pins all three back-ends to the
//! arena engine across every benchmark.

use crate::cache::{Cache, Liveness};
use crate::config::CacheConfig;
use crate::hierarchy::{MemorySystem, ServiceLevel};
use crate::stats::HierarchyStats;
use tlc_trace::events::{
    EventArena, EventChunkView, EVENT_HAS_VICTIM, EVENT_KIND_FETCH, EVENT_KIND_MASK,
    EVENT_VICTIM_WRITTEN,
};
use tlc_trace::{AccessKind, LineAddr, MemRef, MissEvent, VictimLine};

/// The L1 side of a decomposed hierarchy: split direct-mapped I/D caches
/// that record one [`MissEvent`] per L1 miss into an [`EventArena`].
///
/// Implements [`MemorySystem`] so any replay loop that can drive a full
/// hierarchy can drive the capture; `access` returns
/// [`ServiceLevel::Memory`] on a miss (the L2 classification is exactly
/// what varies per back-end). [`MemorySystem::reset_stats`] additionally
/// bookmarks the warm-up boundary in the event stream, so back-ends can
/// reset their counters at the same instant.
///
/// Statistics follow the store-only dirty convention: the L1 fills with
/// `is_write`, matching the single-level and conventional hierarchies
/// bit-for-bit; the exclusive back-end layers the L2-dependent dirty
/// component on top (see the module docs).
#[derive(Debug)]
pub struct L1FrontEnd {
    l1i: Cache,
    l1d: Cache,
    line_bytes: u64,
    stats: HierarchyStats,
    /// Same-line fetch filter, identical to the monolithic hierarchies
    /// (see [`SingleLevel`](crate::SingleLevel)): the last fetched line
    /// is resident by construction, so a repeat fetch is a guaranteed
    /// hit — and emits no event.
    last_fetch: u64,
    events: EventArena,
    warmup_events: u64,
    /// Lifetime reference count (instrumented builds only; stays 0 and
    /// costs nothing otherwise). Flushed to `filter.*` counters by
    /// [`L1FrontEnd::finish`].
    total_refs: u64,
}

impl L1FrontEnd {
    /// Builds the front-end; instruction and data caches share `l1_cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `l1_cfg` is not direct-mapped. The paper's design space
    /// only has direct-mapped L1s (§2.1), and the decomposition relies on
    /// it: a victim and its displacer share the single way of one set, so
    /// the exclusive back-end can mirror fill-dirty state per set.
    pub fn new(l1_cfg: CacheConfig) -> Self {
        let l1i = Cache::new(l1_cfg);
        assert!(l1i.is_direct_mapped(), "miss-stream filtering requires a direct-mapped L1");
        L1FrontEnd {
            l1i,
            l1d: Cache::new(l1_cfg),
            line_bytes: l1_cfg.line_bytes(),
            stats: HierarchyStats::default(),
            last_fetch: u64::MAX,
            events: EventArena::new(),
            warmup_events: 0,
            total_refs: 0,
        }
    }

    /// Resident size of the captured event stream so far, in bytes.
    /// Callers bound a capture's footprint by checking this between
    /// replay chunks.
    pub fn event_bytes(&self) -> usize {
        self.events.bytes()
    }

    /// Events captured so far.
    pub fn event_count(&self) -> u64 {
        self.events.len()
    }

    /// Finishes the capture, packaging the event stream, the warm-up
    /// boundary, and the measured-window L1-side statistics into a
    /// shareable [`MissStream`] named after the captured workload.
    pub fn finish(self, name: &str) -> MissStream {
        // Every miss (and only a miss) pushed one event, so the
        // hits/misses/decoded invariant holds by construction.
        tlc_obs::obs_count!(tlc_obs::Counter::FilterEventsDecoded, self.total_refs);
        tlc_obs::obs_count!(tlc_obs::Counter::FilterL1Misses, self.events.len());
        tlc_obs::obs_count!(tlc_obs::Counter::FilterL1Hits, self.total_refs - self.events.len());
        tlc_obs::obs_count!(tlc_obs::Counter::FilterEventBytes, self.events.bytes() as u64);
        MissStream {
            name: name.to_string(),
            events: self.events,
            warmup_events: self.warmup_events,
            l1_stats: self.stats,
            l1_size_bytes: self.l1i.config().size_bytes(),
            line_bytes: self.line_bytes,
        }
    }

    /// Splits everything captured so far off into a [`MissStream`] —
    /// events, warm-up boundary, and L1-side statistics — while
    /// **keeping** the L1 cache contents, the same-line fetch filter,
    /// and the dirty bits. The front-end then keeps capturing into a
    /// fresh segment from warm (stale) L1 state.
    ///
    /// This is the stitched-warming primitive behind the sampled sweep:
    /// one front-end replays every representative phase slice in trace
    /// order, `take_stream` cuts a segment per slice, and the segments
    /// inherit L1 state across the gaps instead of restarting cold.
    pub fn take_stream(&mut self, name: &str) -> MissStream {
        // Same counter flush as `finish`, scoped to this segment.
        tlc_obs::obs_count!(tlc_obs::Counter::FilterEventsDecoded, self.total_refs);
        tlc_obs::obs_count!(tlc_obs::Counter::FilterL1Misses, self.events.len());
        tlc_obs::obs_count!(tlc_obs::Counter::FilterL1Hits, self.total_refs - self.events.len());
        tlc_obs::obs_count!(tlc_obs::Counter::FilterEventBytes, self.events.bytes() as u64);
        let events = std::mem::replace(&mut self.events, EventArena::new());
        let warmup_events = std::mem::take(&mut self.warmup_events);
        let l1_stats = self.stats;
        self.stats = HierarchyStats::default();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.total_refs = 0;
        MissStream {
            name: name.to_string(),
            events,
            warmup_events,
            l1_stats,
            l1_size_bytes: self.l1i.config().size_bytes(),
            line_bytes: self.line_bytes,
        }
    }
}

impl MemorySystem for L1FrontEnd {
    #[inline]
    fn access(&mut self, r: MemRef) -> ServiceLevel {
        if tlc_obs::ENABLED {
            self.total_refs += 1;
        }
        let line = r.addr.line(self.line_bytes);
        let is_write = r.kind == AccessKind::Store;
        let is_fetch = r.kind == AccessKind::InstrFetch;
        let victim = if is_fetch {
            self.stats.instructions += 1;
            if line.0 == self.last_fetch {
                self.l1i.note_filtered_hit();
                return ServiceLevel::L1;
            }
            self.last_fetch = line.0;
            if self.l1i.access(line, false) {
                return ServiceLevel::L1;
            }
            self.stats.l1i_misses += 1;
            self.l1i.fill_after_miss(line, false)
        } else {
            self.stats.data_refs += 1;
            if self.l1d.access(line, is_write) {
                return ServiceLevel::L1;
            }
            self.stats.l1d_misses += 1;
            self.l1d.fill_after_miss(line, is_write)
        };
        self.events.push(MissEvent {
            kind: r.kind,
            line,
            victim: victim.map(|v| VictimLine { line: v.line, written: v.dirty }),
        });
        ServiceLevel::Memory
    }

    fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Clears the L1-side statistics and bookmarks the warm-up boundary
    /// at the current event count; events are *kept* (back-ends need the
    /// warm-up events to warm their L2 state).
    fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.warmup_events = self.events.len();
    }

    fn describe(&self) -> String {
        format!("L1 miss-stream front-end: split L1 {}", self.l1i.config())
    }
}

/// A captured L1 miss/victim stream: everything an L2 back-end needs to
/// reproduce a full hierarchy simulation — the packed events, the warm-up
/// boundary within them, and the (L2-independent) L1-side statistics of
/// the measured window.
///
/// Immutable after capture; share by reference across sweep workers.
#[derive(Debug)]
pub struct MissStream {
    name: String,
    events: EventArena,
    warmup_events: u64,
    l1_stats: HierarchyStats,
    l1_size_bytes: u64,
    line_bytes: u64,
}

impl MissStream {
    /// Reassembles a stream from previously captured parts — the corpus
    /// replay path: a deserialized [`EventArena`] plus the sidecar
    /// metadata a trace file carries. `l1_stats` may be zeroed when only
    /// the L2-side counters matter (as in corpus divergence checks).
    ///
    /// # Panics
    ///
    /// Panics unless `l1_size_bytes` and `line_bytes` are powers of two
    /// with at least one line, and `warmup_events` is within the stream.
    pub fn from_parts(
        name: &str,
        events: EventArena,
        warmup_events: u64,
        l1_stats: HierarchyStats,
        l1_size_bytes: u64,
        line_bytes: u64,
    ) -> Self {
        assert!(
            l1_size_bytes.is_power_of_two()
                && line_bytes.is_power_of_two()
                && l1_size_bytes >= line_bytes,
            "L1 geometry must be powers of two with at least one line"
        );
        assert!(warmup_events <= events.len(), "warm-up boundary outside the stream");
        MissStream {
            name: name.to_string(),
            events,
            warmup_events,
            l1_stats,
            l1_size_bytes,
            line_bytes,
        }
    }

    /// The captured workload's name (e.g. `"gcc1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total events (warm-up + measured).
    pub fn len(&self) -> u64 {
        self.events.len()
    }

    /// Whether the stream holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events belonging to the warm-up window; back-ends replay them to
    /// warm L2 state, then reset their counters.
    pub fn warmup_events(&self) -> u64 {
        self.warmup_events
    }

    /// Resident size of the packed event buffer, in bytes.
    pub fn bytes(&self) -> usize {
        self.events.bytes()
    }

    /// L1-side statistics of the measured window (instructions, data
    /// references, L1I/L1D misses; the L2-side counters are zero).
    pub fn l1_stats(&self) -> &HierarchyStats {
        &self.l1_stats
    }

    /// Size of each L1 cache the stream was captured through, in bytes.
    pub fn l1_size_bytes(&self) -> u64 {
        self.l1_size_bytes
    }

    /// Line size the stream was captured with, in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Iterates over all events in capture order (decoded; for tests and
    /// diagnostics — replays walk the packed chunks internally).
    pub fn events(&self) -> impl Iterator<Item = MissEvent> + '_ {
        self.events.iter()
    }

    /// L1 sets per side (for the exclusive back-end's fill-dirty mirror;
    /// shared with the family-batched back-ends in
    /// [`filter_family`](crate::filter_family)).
    pub(crate) fn l1_sets(&self) -> usize {
        (self.l1_size_bytes / self.line_bytes) as usize
    }
}

/// Anything that can consume a decoded event stream: the scalar back-ends
/// below and the family-batched back-ends in
/// [`filter_family`](crate::filter_family).
pub(crate) trait EventSink {
    /// Consumes one event. `fetch` is true for instruction-fetch misses;
    /// `victim` carries the displaced line and its store-only written bit.
    fn consume(&mut self, fetch: bool, line: LineAddr, victim: Option<(LineAddr, bool)>);

    /// Clears the counters at the warm-up boundary (L2 contents persist).
    fn reset_counters(&mut self);
}

/// One scalar L2 back-end: an [`EventSink`] that can report the three
/// L2-side counters.
trait BackEnd: EventSink {
    /// `(l2_hits, l2_misses, offchip_writebacks)` accumulated since the
    /// last reset.
    fn counters(&self) -> (u64, u64, u64);
}

/// Walks the packed event stream through `sink`, resetting its counters
/// at the warm-up boundary exactly where the arena engine resets the
/// monolithic hierarchy's statistics (including the mid-chunk split and
/// the exhausted-inside-warm-up reset).
pub(crate) fn walk_events<S: EventSink>(sink: &mut S, stream: &MissStream) {
    let warm = stream.warmup_events;
    let mut pos = 0u64;
    for chunk in stream.events.chunks() {
        let len = chunk.len() as u64;
        if pos >= warm {
            replay_event_chunk(sink, chunk, 0, len as usize);
        } else if pos + len <= warm {
            replay_event_chunk(sink, chunk, 0, len as usize);
            if pos + len == warm {
                sink.reset_counters();
            }
        } else {
            let split = (warm - pos) as usize;
            replay_event_chunk(sink, chunk, 0, split);
            sink.reset_counters();
            replay_event_chunk(sink, chunk, split, len as usize);
        }
        pos += len;
    }
    if pos <= warm {
        // Stream exhausted inside warm-up (or boundary at the very end
        // with no measured events): nothing was measured.
        sink.reset_counters();
    }
}

/// Walks the stream through `back` and assembles the final statistics
/// from the stream's L1-side counters plus the back-end's measured L2
/// counters.
fn replay_on<B: BackEnd>(back: &mut B, stream: &MissStream) -> HierarchyStats {
    walk_events(back, stream);
    let (l2_hits, l2_misses, offchip_writebacks) = back.counters();
    HierarchyStats { l2_hits, l2_misses, offchip_writebacks, ..*stream.l1_stats() }
}

/// Flushes one replay pass's L2-side totals to the global counters.
/// `stats` carries the measured-window hit/miss/writeback counts;
/// `draws`/`swaps`/`live` are lifetime totals (warm-up included — the
/// LFSR, the swap path, and the fill-generation tallies are never
/// reset), matching the family engines so the two report identical sums
/// on identical configs.
pub(crate) fn flush_l2_counters(
    events: u64,
    stats: &HierarchyStats,
    draws: u64,
    swaps: u64,
    live: Liveness,
) {
    tlc_obs::obs_count!(tlc_obs::Counter::L2EventsReplayed, events);
    tlc_obs::obs_count!(tlc_obs::Counter::L2Hits, stats.l2_hits);
    tlc_obs::obs_count!(tlc_obs::Counter::L2Misses, stats.l2_misses);
    tlc_obs::obs_count!(tlc_obs::Counter::L2Probes, stats.l2_hits + stats.l2_misses);
    tlc_obs::obs_count!(tlc_obs::Counter::L2Writebacks, stats.offchip_writebacks);
    tlc_obs::obs_count!(tlc_obs::Counter::L2LfsrDraws, draws);
    tlc_obs::obs_count!(tlc_obs::Counter::L2ExclusiveSwaps, swaps);
    tlc_obs::obs_count!(tlc_obs::Counter::L2Fills, live.fills);
    tlc_obs::obs_count!(tlc_obs::Counter::L2DeadOnArrival, live.dead_on_arrival);
    tlc_obs::obs_count!(tlc_obs::Counter::L2LiveFills, live.live_fills);
    tlc_obs::obs_count!(tlc_obs::Counter::L2MultiHit, live.multi_hit);
}

/// The replay inner loop: slice iteration over one chunk's packed
/// columns, statically dispatched per concrete back-end.
#[inline]
fn replay_event_chunk<B: EventSink>(
    back: &mut B,
    chunk: EventChunkView<'_>,
    start: usize,
    end: usize,
) {
    let lines = &chunk.line[start..end];
    let victims = &chunk.victim[start..end];
    let flags = &chunk.flags[start..end];
    for i in 0..lines.len() {
        let f = flags[i];
        let victim = (f & EVENT_HAS_VICTIM != 0)
            .then(|| (LineAddr(victims[i]), f & EVENT_VICTIM_WRITTEN != 0));
        back.consume(f & EVENT_KIND_MASK == EVENT_KIND_FETCH, LineAddr(lines[i]), victim);
    }
}

/// Back-end for [`SingleLevel`](crate::SingleLevel): every L1 miss is an
/// off-chip demand fetch; a written victim is an off-chip writeback.
#[derive(Debug, Default)]
struct SingleBack {
    l2_misses: u64,
    offchip_writebacks: u64,
}

impl EventSink for SingleBack {
    #[inline]
    fn consume(&mut self, _fetch: bool, _line: LineAddr, victim: Option<(LineAddr, bool)>) {
        self.l2_misses += 1;
        if let Some((_, written)) = victim {
            if written {
                self.offchip_writebacks += 1;
            }
        }
    }

    fn reset_counters(&mut self) {
        self.l2_misses = 0;
        self.offchip_writebacks = 0;
    }
}

impl BackEnd for SingleBack {
    fn counters(&self) -> (u64, u64, u64) {
        (0, self.l2_misses, self.offchip_writebacks)
    }
}

/// Back-end for [`ConventionalTwoLevel`](crate::ConventionalTwoLevel):
/// the same L2 call sequence as the monolithic hierarchy's miss path.
#[derive(Debug)]
struct ConventionalBack {
    l2: Cache,
    l2_hits: u64,
    l2_misses: u64,
    offchip_writebacks: u64,
}

impl EventSink for ConventionalBack {
    #[inline]
    fn consume(&mut self, _fetch: bool, line: LineAddr, victim: Option<(LineAddr, bool)>) {
        if self.l2.access(line, false) {
            self.l2_hits += 1;
        } else {
            self.l2_misses += 1;
            if let Some(v2) = self.l2.fill_after_miss(line, false) {
                if v2.dirty {
                    self.offchip_writebacks += 1;
                }
            }
        }
        // The L1 fill happens after the L2 interaction in the monolithic
        // hierarchy; only its dirty victim touches the L2 (store-only
        // dirty is exact for the conventional L1).
        if let Some((vline, written)) = victim {
            if written && !self.l2.merge_if_present(vline, true) {
                self.offchip_writebacks += 1;
            }
        }
    }

    fn reset_counters(&mut self) {
        self.l2_hits = 0;
        self.l2_misses = 0;
        self.offchip_writebacks = 0;
    }
}

impl BackEnd for ConventionalBack {
    fn counters(&self) -> (u64, u64, u64) {
        (self.l2_hits, self.l2_misses, self.offchip_writebacks)
    }
}

/// Back-end for [`ExclusiveTwoLevel`](crate::ExclusiveTwoLevel).
///
/// The one L2-dependent bit of L1 state is reconstructed here: when an
/// L1-miss/L2-hit fills the L1, the monolithic hierarchy marks the L1
/// line dirty if the extracted L2 copy was dirty. The back-end keeps a
/// per-L1-set mirror (one bool per set per side, the L1 being
/// direct-mapped) of exactly that bit for the *current* resident; a
/// victim's true dirty bit is then `written || mirror[set]`, read before
/// the new fill overwrites the mirror entry (victim and filled line share
/// the set by construction).
#[derive(Debug)]
struct ExclusiveBack {
    l2: Cache,
    /// "Current resident was filled from a dirty L2 extract", per L1I set.
    mirror_i: Vec<bool>,
    /// Same, per L1D set.
    mirror_d: Vec<bool>,
    l1_set_mask: u64,
    l2_hits: u64,
    l2_misses: u64,
    offchip_writebacks: u64,
    /// Lifetime fig-21a swap count (instrumented builds only).
    swaps: u64,
}

impl ExclusiveBack {
    /// Mirror of
    /// [`ExclusiveTwoLevel::send_victim_to_l2`](crate::ExclusiveTwoLevel)
    /// with no freed slot: merge into an existing copy, else insert into
    /// the victim's own set, counting a dirty L2 eviction off-chip.
    #[inline]
    fn send_victim(&mut self, vline: LineAddr, vdirty: bool) {
        if self.l2.merge_if_present(vline, vdirty) {
            return;
        }
        if let Some(ev) = self.l2.fill_after_miss(vline, vdirty) {
            if ev.dirty {
                self.offchip_writebacks += 1;
            }
        }
    }
}

impl EventSink for ExclusiveBack {
    #[inline]
    fn consume(&mut self, fetch: bool, line: LineAddr, victim: Option<(LineAddr, bool)>) {
        let set = (line.0 & self.l1_set_mask) as usize;
        let mirror = if fetch { &mut self.mirror_i } else { &mut self.mirror_d };
        // Read the victim's fill-dirty component BEFORE the new fill
        // overwrites the set's mirror entry.
        let victim = victim.map(|(vline, written)| (vline, written || mirror[set]));
        if self.l2.access(line, false) {
            self.l2_hits += 1;
            let (dirty, slot) =
                self.l2.extract(line).expect("L2 hit implies the line is extractable");
            mirror[set] = dirty;
            match victim {
                Some((vline, vdirty)) => {
                    if self.l2.set_index(vline) == slot.set && !self.l2.contains(vline) {
                        // Figure 21-a swap: the victim takes the requested
                        // line's way; the displaced line is the requested
                        // line itself, already in L1.
                        if tlc_obs::ENABLED {
                            self.swaps += 1;
                        }
                        self.l2.fill_at(vline, vdirty, slot);
                    } else {
                        self.l2.fill_at(line, dirty, slot);
                        self.send_victim(vline, vdirty);
                    }
                }
                None => {
                    self.l2.fill_at(line, dirty, slot);
                }
            }
        } else {
            self.l2_misses += 1;
            // Off-chip refill bypasses the L2 and fills the L1 with the
            // store-only dirty bit: no fill-dirty component.
            mirror[set] = false;
            if let Some((vline, vdirty)) = victim {
                self.send_victim(vline, vdirty);
            }
        }
    }

    fn reset_counters(&mut self) {
        self.l2_hits = 0;
        self.l2_misses = 0;
        self.offchip_writebacks = 0;
    }
}

impl BackEnd for ExclusiveBack {
    fn counters(&self) -> (u64, u64, u64) {
        (self.l2_hits, self.l2_misses, self.offchip_writebacks)
    }
}

/// Replays `stream` as a [`SingleLevel`](crate::SingleLevel) hierarchy
/// would experience it. Bit-identical to simulating the monolithic
/// system on the original reference stream.
pub fn replay_single(stream: &MissStream) -> HierarchyStats {
    let stats = replay_on(&mut SingleBack::default(), stream);
    // No L2 exists here: the pass contributes replayed events and
    // off-chip writebacks, but no probes (`l2.probes` counts real L2
    // lookups only, keeping the hits+misses invariant meaningful).
    tlc_obs::obs_count!(tlc_obs::Counter::L2EventsReplayed, stream.len());
    tlc_obs::obs_count!(tlc_obs::Counter::L2Writebacks, stats.offchip_writebacks);
    stats
}

/// Replays `stream` through a conventional L2, producing the exact
/// statistics [`ConventionalTwoLevel`](crate::ConventionalTwoLevel)
/// would report on the original reference stream.
///
/// # Panics
///
/// Panics if `l2_cfg`'s line size differs from the stream's.
pub fn replay_conventional(l2_cfg: CacheConfig, stream: &MissStream) -> HierarchyStats {
    assert_eq!(l2_cfg.line_bytes(), stream.line_bytes(), "L1 and L2 must share a line size");
    let mut back = ConventionalBack {
        l2: Cache::new(l2_cfg),
        l2_hits: 0,
        l2_misses: 0,
        offchip_writebacks: 0,
    };
    let stats = replay_on(&mut back, stream);
    flush_l2_counters(stream.len(), &stats, back.l2.lfsr_draws(), 0, back.l2.liveness());
    stats
}

/// Replays `stream` through an exclusive (victim-swap) L2, producing the
/// exact statistics [`ExclusiveTwoLevel`](crate::ExclusiveTwoLevel)
/// would report on the original reference stream.
///
/// # Panics
///
/// Panics if `l2_cfg`'s line size differs from the stream's.
pub fn replay_exclusive(l2_cfg: CacheConfig, stream: &MissStream) -> HierarchyStats {
    assert_eq!(l2_cfg.line_bytes(), stream.line_bytes(), "L1 and L2 must share a line size");
    let sets = stream.l1_sets();
    let mut back = ExclusiveBack {
        l2: Cache::new(l2_cfg),
        mirror_i: vec![false; sets],
        mirror_d: vec![false; sets],
        l1_set_mask: sets as u64 - 1,
        l2_hits: 0,
        l2_misses: 0,
        offchip_writebacks: 0,
        swaps: 0,
    };
    let stats = replay_on(&mut back, stream);
    flush_l2_counters(stream.len(), &stats, back.l2.lfsr_draws(), back.swaps, back.l2.liveness());
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Associativity, ReplacementKind};
    use crate::exclusive::ExclusiveTwoLevel;
    use crate::single::SingleLevel;
    use crate::twolevel::ConventionalTwoLevel;
    use tlc_trace::spec::SpecBenchmark;
    use tlc_trace::{Addr, InstructionSource};

    fn l1_cfg(bytes: u64) -> CacheConfig {
        CacheConfig::new(bytes, 16, Associativity::Direct, ReplacementKind::PseudoRandom).unwrap()
    }

    fn l2_cfg(bytes: u64, ways: u32) -> CacheConfig {
        let assoc = if ways == 1 { Associativity::Direct } else { Associativity::SetAssoc(ways) };
        CacheConfig::new(bytes, 16, assoc, ReplacementKind::PseudoRandom).unwrap()
    }

    /// Captures `n` instructions of `b` through a front-end, with a
    /// stats reset (warm-up bookmark) after `warm` instructions.
    fn capture(b: SpecBenchmark, l1_bytes: u64, warm: u64, n: u64) -> MissStream {
        let mut fe = L1FrontEnd::new(l1_cfg(l1_bytes));
        let mut w = b.workload();
        for _ in 0..warm {
            fe.access_instruction(&w.next_instruction_opt().unwrap());
        }
        fe.reset_stats();
        for _ in 0..n {
            fe.access_instruction(&w.next_instruction_opt().unwrap());
        }
        fe.finish(b.name())
    }

    /// Drives the same window through a monolithic system.
    fn reference<M: MemorySystem>(b: SpecBenchmark, sys: &mut M, warm: u64, n: u64) {
        let mut w = b.workload();
        for _ in 0..warm {
            sys.access_instruction(&w.next_instruction_opt().unwrap());
        }
        sys.reset_stats();
        for _ in 0..n {
            sys.access_instruction(&w.next_instruction_opt().unwrap());
        }
    }

    #[test]
    fn single_back_matches_monolithic() {
        for b in [SpecBenchmark::Gcc1, SpecBenchmark::Tomcatv] {
            let stream = capture(b, 1024, 2_000, 8_000);
            let mut sys = SingleLevel::new(l1_cfg(1024));
            reference(b, &mut sys, 2_000, 8_000);
            assert_eq!(replay_single(&stream), *sys.stats(), "{}", b.name());
        }
    }

    #[test]
    fn conventional_back_matches_monolithic() {
        for (l1, l2, ways) in [(1024, 8192, 4), (2048, 4096, 1)] {
            let stream = capture(SpecBenchmark::Gcc1, l1, 2_000, 8_000);
            let mut sys = ConventionalTwoLevel::new(l1_cfg(l1), l2_cfg(l2, ways));
            reference(SpecBenchmark::Gcc1, &mut sys, 2_000, 8_000);
            assert_eq!(
                replay_conventional(l2_cfg(l2, ways), &stream),
                *sys.stats(),
                "l1={l1} l2={l2} ways={ways}"
            );
        }
    }

    #[test]
    fn exclusive_back_matches_monolithic() {
        for (l1, l2, ways) in [(1024, 8192, 4), (2048, 4096, 1), (1024, 2048, 4)] {
            let stream = capture(SpecBenchmark::Li, l1, 2_000, 8_000);
            let mut sys = ExclusiveTwoLevel::new(l1_cfg(l1), l2_cfg(l2, ways));
            reference(SpecBenchmark::Li, &mut sys, 2_000, 8_000);
            assert_eq!(
                replay_exclusive(l2_cfg(l2, ways), &stream),
                *sys.stats(),
                "l1={l1} l2={l2} ways={ways}"
            );
        }
    }

    #[test]
    fn one_stream_serves_many_l2s() {
        let stream = capture(SpecBenchmark::Espresso, 1024, 1_000, 5_000);
        for l2 in [2048u64, 8192, 32768] {
            let mut sys = ConventionalTwoLevel::new(l1_cfg(1024), l2_cfg(l2, 4));
            reference(SpecBenchmark::Espresso, &mut sys, 1_000, 5_000);
            assert_eq!(replay_conventional(l2_cfg(l2, 4), &stream), *sys.stats(), "l2={l2}");
        }
    }

    #[test]
    fn exclusive_fill_dirty_mirror_reconstructs_writebacks() {
        // Hand-built ping-pong on the Figure 21 geometry: a store makes A
        // dirty; swaps move it L1→L2→L1 with the dirty bit carried by the
        // *fill*, not by stores — exactly the case the mirror exists for.
        let l1 = l1_cfg(64); // 4 lines
        let l2 = l2_cfg(256, 1); // 16 lines
        let mut fe = L1FrontEnd::new(l1);
        let mut sys = ExclusiveTwoLevel::new(l1, l2);
        let a = Addr::new(0x000);
        let e = Addr::new(0x100);
        let mut refs = vec![MemRef::store(a)];
        for i in 0..6u64 {
            refs.push(MemRef::load(if i % 2 == 0 { e } else { a }));
        }
        for i in 1..8u64 {
            refs.push(MemRef::load(Addr::new(i * 0x100)));
        }
        for r in &refs {
            fe.access(*r);
            sys.access(*r);
        }
        let stream = fe.finish("pingpong");
        let got = replay_exclusive(l2, &stream);
        assert_eq!(got, *sys.stats());
        assert!(got.offchip_writebacks >= 1, "the dirty line must eventually go off-chip");
    }

    #[test]
    fn warmup_boundary_resets_backend_counters() {
        let stream = capture(SpecBenchmark::Fpppp, 1024, 3_000, 3_000);
        let mut sys = ConventionalTwoLevel::new(l1_cfg(1024), l2_cfg(8192, 4));
        reference(SpecBenchmark::Fpppp, &mut sys, 3_000, 3_000);
        let got = replay_conventional(l2_cfg(8192, 4), &stream);
        assert_eq!(got, *sys.stats());
        assert_eq!(got.instructions, 3_000);
    }

    #[test]
    fn empty_measurement_window_is_all_zero() {
        // Reset at the very end: nothing measured, matching the arena
        // engine's early-exhaustion contract.
        let mut fe = L1FrontEnd::new(l1_cfg(1024));
        let mut w = SpecBenchmark::Li.workload();
        for _ in 0..500 {
            fe.access_instruction(&w.next_instruction_opt().unwrap());
        }
        fe.reset_stats();
        let stream = fe.finish("li");
        assert_eq!(stream.warmup_events(), stream.len());
        assert_eq!(replay_single(&stream), HierarchyStats::default());
        assert_eq!(replay_conventional(l2_cfg(4096, 4), &stream), HierarchyStats::default());
        assert_eq!(replay_exclusive(l2_cfg(4096, 4), &stream), HierarchyStats::default());
    }

    #[test]
    fn front_end_filters_repeat_fetches() {
        let mut fe = L1FrontEnd::new(l1_cfg(1024));
        let a = Addr::new(0x40);
        fe.access(MemRef::fetch(a));
        fe.access(MemRef::fetch(a));
        fe.access(MemRef::fetch(a));
        assert_eq!(fe.stats().instructions, 3);
        assert_eq!(fe.stats().l1i_misses, 1, "repeat fetches are guaranteed hits");
        assert_eq!(fe.event_count(), 1);
    }

    #[test]
    #[should_panic(expected = "direct-mapped")]
    fn rejects_associative_l1() {
        let cfg =
            CacheConfig::new(1024, 16, Associativity::SetAssoc(2), ReplacementKind::PseudoRandom)
                .unwrap();
        let _ = L1FrontEnd::new(cfg);
    }
}
