//! Three-C miss classification (compulsory / capacity / conflict).
//!
//! The paper's motivation for set-associative and exclusive second levels
//! rests on *which kind* of L1 misses they absorb (conflict misses in
//! particular, §1 advantage 3 and §8). [`MissClassifier`] implements the
//! standard Hill decomposition: a miss is **compulsory** if the line was
//! never seen before, **capacity** if a fully-associative LRU cache of
//! equal size would also have missed, and **conflict** otherwise.

use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use tlc_trace::LineAddr;

/// The classical miss taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MissClass {
    /// First-ever reference to the line.
    Compulsory,
    /// A fully-associative LRU cache of the same capacity also misses.
    Capacity,
    /// Only the real cache's mapping restrictions cause the miss.
    Conflict,
}

/// Per-class miss counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissBreakdown {
    /// Compulsory misses.
    pub compulsory: u64,
    /// Capacity misses.
    pub capacity: u64,
    /// Conflict misses.
    pub conflict: u64,
}

impl MissBreakdown {
    /// Total classified misses.
    pub fn total(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }
}

/// A fully-associative LRU model of a given line capacity, used as the
/// capacity-miss reference. O(1) amortised per access via an intrusive
/// doubly-linked list over a slab.
#[derive(Debug)]
struct FullyAssocLru {
    capacity: usize,
    map: HashMap<LineAddr, usize>,
    // Slab of nodes: (line, prev, next). usize::MAX = null.
    nodes: Vec<(LineAddr, usize, usize)>,
    head: usize, // most recent
    tail: usize, // least recent
    free: Vec<usize>,
}

const NIL: usize = usize::MAX;

impl FullyAssocLru {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        FullyAssocLru {
            capacity,
            map: HashMap::with_capacity(capacity + 1),
            nodes: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    fn detach(&mut self, idx: usize) {
        let (_, prev, next) = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].2 = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].1 = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].1 = NIL;
        self.nodes[idx].2 = self.head;
        if self.head != NIL {
            self.nodes[self.head].1 = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Accesses `line`; returns whether it hit.
    fn access(&mut self, line: LineAddr) -> bool {
        if let Some(&idx) = self.map.get(&line) {
            self.detach(idx);
            self.push_front(idx);
            return true;
        }
        // Miss: insert, evicting LRU if full.
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.detach(victim);
            let line_out = self.nodes[victim].0;
            self.map.remove(&line_out);
            self.free.push(victim);
        }
        let idx = if let Some(i) = self.free.pop() {
            self.nodes[i] = (line, NIL, NIL);
            i
        } else {
            self.nodes.push((line, NIL, NIL));
            self.nodes.len() - 1
        };
        self.push_front(idx);
        self.map.insert(line, idx);
        false
    }
}

/// Classifies misses of one cache against the 3C taxonomy. Feed it every
/// access of the *same* reference stream the real cache sees, telling it
/// whether the real cache hit.
///
/// # Examples
///
/// ```
/// use tlc_cache::{MissClass, MissClassifier};
/// use tlc_trace::LineAddr;
///
/// let mut c = MissClassifier::new(2); // 2-line reference cache
/// assert_eq!(c.classify(LineAddr(0), false), Some(MissClass::Compulsory));
/// assert_eq!(c.classify(LineAddr(0), true), None); // real hit: nothing to classify
/// ```
#[derive(Debug)]
pub struct MissClassifier {
    seen: HashMap<LineAddr, ()>,
    reference: FullyAssocLru,
    breakdown: MissBreakdown,
}

impl MissClassifier {
    /// Creates a classifier whose capacity reference holds
    /// `capacity_lines` lines (the real cache's line count).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` is zero.
    pub fn new(capacity_lines: usize) -> Self {
        MissClassifier {
            seen: HashMap::new(),
            reference: FullyAssocLru::new(capacity_lines),
            breakdown: MissBreakdown::default(),
        }
    }

    /// Observes one access. `real_hit` is the real cache's outcome.
    /// Returns the class if the access was a real miss.
    pub fn classify(&mut self, line: LineAddr, real_hit: bool) -> Option<MissClass> {
        let first_touch = match self.seen.entry(line) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(());
                true
            }
        };
        let fa_hit = self.reference.access(line);
        if real_hit {
            return None;
        }
        let class = if first_touch {
            MissClass::Compulsory
        } else if !fa_hit {
            MissClass::Capacity
        } else {
            MissClass::Conflict
        };
        match class {
            MissClass::Compulsory => self.breakdown.compulsory += 1,
            MissClass::Capacity => self.breakdown.capacity += 1,
            MissClass::Conflict => self.breakdown.conflict += 1,
        }
        Some(class)
    }

    /// The accumulated per-class counts.
    pub fn breakdown(&self) -> MissBreakdown {
        self.breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::config::{Associativity, CacheConfig, ReplacementKind};

    fn line(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn first_touch_is_compulsory() {
        let mut c = MissClassifier::new(4);
        assert_eq!(c.classify(line(1), false), Some(MissClass::Compulsory));
        assert_eq!(c.breakdown().compulsory, 1);
    }

    #[test]
    fn real_hits_are_not_classified() {
        let mut c = MissClassifier::new(4);
        assert_eq!(c.classify(line(1), true), None);
        assert_eq!(c.breakdown().total(), 0);
    }

    #[test]
    fn conflict_vs_capacity() {
        // Capacity 4; touch lines 0 and 4 (which would conflict in a
        // 4-line DM cache) alternately. The FA reference holds both, so
        // repeat misses are conflicts.
        let mut c = MissClassifier::new(4);
        c.classify(line(0), false); // compulsory
        c.classify(line(4), false); // compulsory
        assert_eq!(c.classify(line(0), false), Some(MissClass::Conflict));
        assert_eq!(c.classify(line(4), false), Some(MissClass::Conflict));
        // Now stream 5 distinct lines — more than capacity — twice: the
        // second pass misses are capacity misses.
        let mut c = MissClassifier::new(4);
        for l in 0..5u64 {
            c.classify(line(l), false);
        }
        for l in 0..5u64 {
            assert_eq!(c.classify(line(l), false), Some(MissClass::Capacity), "line {l}");
        }
    }

    #[test]
    fn agrees_with_real_dm_cache_totals() {
        // Drive a real DM cache and the classifier together; every real
        // miss must be classified and sums must match.
        let cfg =
            CacheConfig::new(16 * 16, 16, Associativity::Direct, ReplacementKind::Lru).unwrap();
        let mut cache = Cache::new(cfg);
        let mut cls = MissClassifier::new(16);
        let mut misses = 0u64;
        for i in 0..5000u64 {
            // Three lines that all map to DM set 0 but fit easily in the
            // 16-line FA reference: repeat misses are pure conflicts.
            let l = line((i % 3) * 16);
            let hit = cache.access(l, false);
            if !hit {
                cache.fill(l, false);
                misses += 1;
            }
            cls.classify(l, hit);
        }
        assert_eq!(cls.breakdown().total(), misses);
        assert!(cls.breakdown().conflict > 0, "DM cache on 3 set-0 lines must show conflicts");
        assert_eq!(cls.breakdown().capacity, 0);
        assert_eq!(cls.breakdown().compulsory, 3);
    }

    #[test]
    fn fully_associative_cache_shows_no_conflict_misses() {
        let cfg = CacheConfig::new(16 * 16, 16, Associativity::Full, ReplacementKind::Lru).unwrap();
        let mut cache = Cache::new(cfg);
        let mut cls = MissClassifier::new(16);
        for i in 0..5000u64 {
            let l = line((i * 7) % 48);
            let hit = cache.access(l, false);
            if !hit {
                cache.fill(l, false);
            }
            cls.classify(l, hit);
        }
        assert_eq!(
            cls.breakdown().conflict,
            0,
            "an FA LRU cache can never have conflict misses vs an equal-size FA LRU reference"
        );
    }

    #[test]
    fn lru_reference_model_is_correct() {
        let mut fa = FullyAssocLru::new(2);
        assert!(!fa.access(line(1)));
        assert!(!fa.access(line(2)));
        assert!(fa.access(line(1))); // 2 is now LRU
        assert!(!fa.access(line(3))); // evicts 2
        assert!(!fa.access(line(2)));
        assert!(fa.access(line(3)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        let _ = MissClassifier::new(0);
    }
}
