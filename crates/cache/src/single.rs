//! Single-level organisation: split direct-mapped L1 caches in front of
//! off-chip memory (the baseline of the paper's §3).

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::hierarchy::{MemorySystem, ServiceLevel};
use crate::stats::HierarchyStats;
use tlc_trace::{AccessKind, MemRef};

/// Split L1 instruction/data caches with no on-chip second level.
///
/// Misses are filled from off-chip (write-allocate, fetch-on-write, as in
/// §2.2 of the paper). In [`HierarchyStats`], every off-chip demand fetch
/// is counted in `l2_misses` so the TPI model treats one- and two-level
/// systems uniformly.
///
/// # Examples
///
/// ```
/// use tlc_cache::{Associativity, CacheConfig, MemorySystem, SingleLevel};
/// use tlc_trace::{Addr, MemRef};
///
/// # fn main() -> Result<(), tlc_cache::ConfigError> {
/// let l1 = CacheConfig::paper(4 * 1024, Associativity::Direct)?;
/// let mut sys = SingleLevel::new(l1);
/// sys.access(MemRef::fetch(Addr::new(0x400000)));      // cold miss
/// sys.access(MemRef::fetch(Addr::new(0x400004)));      // same line: hit
/// assert_eq!(sys.stats().l1i_misses, 1);
/// assert_eq!(sys.stats().instructions, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SingleLevel {
    l1i: Cache,
    l1d: Cache,
    line_bytes: u64,
    stats: HierarchyStats,
    /// Line of the most recent instruction fetch (`u64::MAX` when unknown
    /// or the filter is disabled). Sequential fetch streams mostly stay
    /// within one line, and the last fetched line is resident by
    /// construction — a hit left it in place, a miss filled it — so a
    /// repeat fetch is a guaranteed L1 hit. Only maintained for a
    /// direct-mapped L1I, where a repeat hit has no replacement side
    /// effects to reproduce.
    last_fetch: u64,
}

impl SingleLevel {
    /// Builds the system; instruction and data caches share `l1_cfg`
    /// (the paper studies split caches *of equal size*, §2.1).
    pub fn new(l1_cfg: CacheConfig) -> Self {
        SingleLevel {
            l1i: Cache::new(l1_cfg),
            l1d: Cache::new(l1_cfg),
            line_bytes: l1_cfg.line_bytes(),
            stats: HierarchyStats::default(),
            last_fetch: u64::MAX,
        }
    }

    /// The instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }
}

impl MemorySystem for SingleLevel {
    #[inline]
    fn access(&mut self, r: MemRef) -> ServiceLevel {
        let line = r.addr.line(self.line_bytes);
        let is_write = r.kind == AccessKind::Store;
        let (cache, miss_ctr) = match r.kind {
            AccessKind::InstrFetch => {
                self.stats.instructions += 1;
                if line.0 == self.last_fetch {
                    self.l1i.note_filtered_hit();
                    return ServiceLevel::L1;
                }
                if self.l1i.is_direct_mapped() {
                    self.last_fetch = line.0;
                }
                (&mut self.l1i, &mut self.stats.l1i_misses)
            }
            AccessKind::Load | AccessKind::Store => {
                self.stats.data_refs += 1;
                (&mut self.l1d, &mut self.stats.l1d_misses)
            }
        };
        if cache.access(line, is_write) {
            return ServiceLevel::L1;
        }
        *miss_ctr += 1;
        self.stats.l2_misses += 1; // off-chip demand fetch
        if let Some(ev) = cache.fill_after_miss(line, is_write) {
            if ev.dirty {
                self.stats.offchip_writebacks += 1;
            }
        }
        ServiceLevel::Memory
    }

    fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
    }

    fn invalidate_line(&mut self, line: tlc_trace::LineAddr) -> u32 {
        self.last_fetch = u64::MAX; // the filtered line may be the target
        let mut purged = 0;
        purged += self.l1i.invalidate(line) as u32;
        purged += self.l1d.invalidate(line) as u32;
        purged
    }

    fn describe(&self) -> String {
        format!("single-level: split L1 {} + {}", self.l1i.config(), self.l1d.config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Associativity;
    use tlc_trace::Addr;

    fn sys(l1_bytes: u64) -> SingleLevel {
        SingleLevel::new(CacheConfig::paper(l1_bytes, Associativity::Direct).unwrap())
    }

    #[test]
    fn split_caches_do_not_interfere() {
        let mut s = sys(1024);
        // Same address as fetch and load: each side misses once.
        let a = Addr::new(0x8000);
        s.access(MemRef::fetch(a));
        s.access(MemRef::load(a));
        assert_eq!(s.stats().l1i_misses, 1);
        assert_eq!(s.stats().l1d_misses, 1);
        // Both now hit on their own side.
        assert_eq!(s.access(MemRef::fetch(a)), ServiceLevel::L1);
        assert_eq!(s.access(MemRef::load(a)), ServiceLevel::L1);
    }

    #[test]
    fn stores_allocate_and_dirty() {
        let mut s = sys(1024);
        let a = Addr::new(0x100);
        assert_eq!(s.access(MemRef::store(a)), ServiceLevel::Memory);
        assert_eq!(s.access(MemRef::load(a)), ServiceLevel::L1);
        // Conflict eviction of the dirtied line is an off-chip writeback.
        let conflicting = Addr::new(0x100 + 1024);
        s.access(MemRef::load(conflicting));
        assert_eq!(s.stats().offchip_writebacks, 1);
    }

    #[test]
    fn hit_and_miss_accounting_balances() {
        let mut s = sys(512);
        let mut hits = 0u64;
        for i in 0..10_000u64 {
            let addr = Addr::new((i * 52) % 4096);
            if s.access(MemRef::load(addr)) == ServiceLevel::L1 {
                hits += 1;
            }
        }
        let st = s.stats();
        assert_eq!(st.data_refs, 10_000);
        assert_eq!(st.data_refs - st.l1d_misses, hits);
        assert_eq!(st.l2_misses, st.l1_misses());
        assert_eq!(st.l2_hits, 0);
    }

    #[test]
    fn capacity_behaviour_bigger_cache_fewer_misses() {
        let run = |bytes: u64| {
            let mut s = sys(bytes);
            // Cycle over an 8KB region twice.
            for pass in 0..2 {
                for off in (0..8192u64).step_by(16) {
                    s.access(MemRef::load(Addr::new(off)));
                }
                let _ = pass;
            }
            s.stats().l1d_misses
        };
        let small = run(1024);
        let big = run(16 * 1024);
        assert!(big < small, "bigger cache should miss less: {big} vs {small}");
        // The 16KB cache holds the whole 8KB region: second pass all hits.
        assert_eq!(big, 512);
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut s = sys(1024);
        let a = Addr::new(0x40);
        s.access(MemRef::load(a));
        s.reset_stats();
        assert_eq!(s.stats().total_refs(), 0);
        assert_eq!(s.access(MemRef::load(a)), ServiceLevel::L1, "contents flushed by reset");
    }

    #[test]
    fn describe_mentions_both_caches() {
        let s = sys(2048);
        assert!(s.describe().contains("2KB"));
        assert!(s.describe().contains("single-level"));
    }
}
