//! A single physically-indexed cache.
//!
//! [`Cache`] operates entirely on [`LineAddr`]s — the hierarchy layers
//! translate byte addresses once and pass line numbers down. Besides the
//! ordinary `access` path it exposes the primitives the exclusive policy
//! needs: [`Cache::extract`] (remove a line, reclaiming its way) and
//! [`Cache::fill_at`] (install into a specific way), which together
//! implement the swap of the paper's §8.

use crate::config::CacheConfig;
use crate::replacement::{Lfsr16, SRRIP_LONG_RRPV, SRRIP_MAX_RRPV};
use crate::stats::CacheStats;
use tlc_trace::LineAddr;

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The displaced line.
    pub line: LineAddr,
    /// Whether it held modified data.
    pub dirty: bool,
}

/// Location of a line inside a cache (set and way), returned by probes so
/// callers can target the same slot later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Set index.
    pub set: u64,
    /// Way index within the set.
    pub way: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
}

/// Replacement state for *all* sets, held as flat per-policy arrays
/// rather than one [`ReplState`](crate::replacement::ReplState) per set.
/// Keeping the tag array and the
/// replacement metadata in contiguous allocations (instead of a
/// `Box<[Way]>` plus a boxed stamp array per set) removes two pointer
/// chases from every access — the difference is measurable across the
/// millions of probes a design-space sweep performs.
///
/// The state machines are bit-compatible with
/// [`ReplState`](crate::replacement::ReplState): same stamp sequences,
/// same LFSR consumption, same PLRU bit layout.
#[derive(Debug)]
pub(crate) enum ReplBank {
    /// LRU / FIFO: per-way stamps and a per-set clock.
    Stamped { stamps: Vec<u32>, clock: Vec<u32>, refresh_on_touch: bool },
    /// Pseudo-random: stateless, victims come from the cache-global LFSR.
    Random,
    /// Tree-PLRU: one bit-packed tree per set.
    Tree { bits: Vec<u64> },
    /// SRRIP-HP: one 2-bit RRPV per way, flat like the stamp array.
    Srrip { rrpv: Vec<u8> },
}

impl ReplBank {
    pub(crate) fn new(kind: crate::config::ReplacementKind, num_sets: usize, ways: usize) -> Self {
        use crate::config::ReplacementKind;
        match kind {
            ReplacementKind::Lru => ReplBank::Stamped {
                stamps: vec![0; num_sets * ways],
                clock: vec![0; num_sets],
                refresh_on_touch: true,
            },
            ReplacementKind::Fifo => ReplBank::Stamped {
                stamps: vec![0; num_sets * ways],
                clock: vec![0; num_sets],
                refresh_on_touch: false,
            },
            ReplacementKind::PseudoRandom => ReplBank::Random,
            ReplacementKind::TreePlru => ReplBank::Tree { bits: vec![0; num_sets] },
            // Initial RRPVs are never observed: fills overwrite them, and
            // victims are only chosen from full sets.
            ReplacementKind::Srrip => {
                ReplBank::Srrip { rrpv: vec![SRRIP_MAX_RRPV; num_sets * ways] }
            }
        }
    }

    /// Notifies the bank that `way` of `set` was referenced (hit).
    #[inline]
    pub(crate) fn touch(&mut self, set: usize, stride: usize, way: u32, ways: u32) {
        match self {
            ReplBank::Stamped { stamps, clock, refresh_on_touch } => {
                if *refresh_on_touch {
                    clock[set] += 1;
                    stamps[set * stride + way as usize] = clock[set];
                }
            }
            ReplBank::Random => {}
            ReplBank::Tree { bits } => tree_point_away(&mut bits[set], ways, way),
            ReplBank::Srrip { rrpv } => rrpv[set * stride + way as usize] = 0,
        }
    }

    /// Notifies the bank that `way` of `set` was just filled.
    #[inline]
    pub(crate) fn filled(&mut self, set: usize, stride: usize, way: u32, ways: u32) {
        match self {
            ReplBank::Stamped { stamps, clock, .. } => {
                clock[set] += 1;
                stamps[set * stride + way as usize] = clock[set];
            }
            ReplBank::Random => {}
            ReplBank::Tree { bits } => tree_point_away(&mut bits[set], ways, way),
            ReplBank::Srrip { rrpv } => rrpv[set * stride + way as usize] = SRRIP_LONG_RRPV,
        }
    }

    /// Chooses a victim way in `set`. Mutable because SRRIP ages the
    /// set's RRPVs until one reaches the eviction value.
    #[inline]
    pub(crate) fn victim(
        &mut self,
        set: usize,
        stride: usize,
        ways: u32,
        lfsr: &mut Lfsr16,
    ) -> u32 {
        match self {
            ReplBank::Stamped { stamps, .. } => {
                let mut best = 0u32;
                let mut best_stamp = u32::MAX;
                for (i, &s) in stamps[set * stride..set * stride + stride].iter().enumerate() {
                    if s < best_stamp {
                        best_stamp = s;
                        best = i as u32;
                    }
                }
                best
            }
            ReplBank::Random => {
                let r = lfsr.next() as u32;
                if ways.is_power_of_two() {
                    r & (ways - 1)
                } else {
                    r % ways
                }
            }
            ReplBank::Tree { bits } => {
                let bits = bits[set];
                let mut node = 1u32; // heap-indexed tree, root at 1
                let levels = ways.trailing_zeros();
                for _ in 0..levels {
                    let right = (bits >> node) & 1 == 1;
                    node = node * 2 + right as u32;
                }
                node - ways
            }
            ReplBank::Srrip { rrpv } => {
                let set_rrpv = &mut rrpv[set * stride..set * stride + stride];
                loop {
                    if let Some(i) = set_rrpv.iter().position(|&r| r == SRRIP_MAX_RRPV) {
                        return i as u32;
                    }
                    for r in set_rrpv.iter_mut() {
                        *r += 1;
                    }
                }
            }
        }
    }
}

/// Per-fill block-liveness statistics: how many L2 fill generations died
/// without a single demand hit (dead-on-arrival) versus saw two or more
/// (multi-hit). A *generation* runs from a fill to the moment the line
/// departs (eviction, extraction, or overwrite); generations still
/// resident at snapshot time are classified by their hits so far, so
/// `fills == dead_on_arrival + live_fills` holds exactly.
///
/// Only demand hits ([`Cache::access`]) count as re-references; dirty
/// write-back merges refresh replacement state but are not reuse.
/// Tallies are lifetime (warm-up included), like
/// [`Cache::lfsr_draws`] — and all-zero in uninstrumented builds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Liveness {
    /// Fill generations started.
    pub fills: u64,
    /// Generations that ended (or stand, for residents) with zero hits.
    pub dead_on_arrival: u64,
    /// `fills - dead_on_arrival`.
    pub live_fills: u64,
    /// Generations with two or more hits.
    pub multi_hit: u64,
}

impl Liveness {
    /// Component-wise sum (for family engines that aggregate members).
    pub fn merge(&mut self, other: Liveness) {
        self.fills += other.fills;
        self.dead_on_arrival += other.dead_on_arrival;
        self.live_fills += other.live_fills;
        self.multi_hit += other.multi_hit;
    }
}

/// Running tallies behind [`Liveness`]: departed generations only; the
/// still-resident ones are folded in by [`LiveTally::snapshot`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LiveTally {
    fills: u64,
    dead: u64,
    multi: u64,
}

impl LiveTally {
    /// Starts a generation.
    #[inline]
    pub(crate) fn fill(&mut self) {
        if tlc_obs::ENABLED {
            self.fills += 1;
        }
    }

    /// Ends a generation that saw `hits` demand hits.
    #[inline]
    pub(crate) fn retire(&mut self, hits: u8) {
        if tlc_obs::ENABLED {
            if hits == 0 {
                self.dead += 1;
            } else if hits >= 2 {
                self.multi += 1;
            }
        }
    }

    /// Classifies the still-resident generations' hit counts and returns
    /// the closed totals.
    pub(crate) fn snapshot(mut self, resident: impl Iterator<Item = u8>) -> Liveness {
        for h in resident {
            self.retire(h);
        }
        Liveness {
            fills: self.fills,
            dead_on_arrival: self.dead,
            live_fills: self.fills - self.dead,
            multi_hit: self.multi,
        }
    }
}

/// Flips the PLRU path bits so the tree points *away* from `way` (same
/// layout as [`ReplState`](crate::replacement::ReplState)'s tree
/// variant).
#[inline]
fn tree_point_away(bits: &mut u64, ways: u32, way: u32) {
    let levels = ways.trailing_zeros();
    let mut node = 1u32;
    for level in (0..levels).rev() {
        let go_right = (way >> level) & 1 == 1;
        if go_right {
            *bits &= !(1 << node);
        } else {
            *bits |= 1 << node;
        }
        node = node * 2 + go_right as u32;
    }
}

/// One level of cache. See the module docs.
///
/// # Examples
///
/// ```
/// use tlc_cache::{Associativity, Cache, CacheConfig};
/// use tlc_trace::{Addr, LineAddr};
///
/// # fn main() -> Result<(), tlc_cache::ConfigError> {
/// let mut c = Cache::new(CacheConfig::paper(1024, Associativity::Direct)?);
/// let line = Addr::new(0x1234).line(16);
/// assert!(!c.access(line, false));       // cold miss
/// c.fill(line, false);
/// assert!(c.access(line, false));        // now hits
/// assert_eq!(c.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// All ways of all sets, set-major: `ways[set * stride + way]`.
    ways: Vec<Way>,
    repl: ReplBank,
    /// Ways per set.
    stride: usize,
    set_mask: u64,
    set_shift: u32,
    lfsr: Lfsr16,
    stats: CacheStats,
    /// Lifetime pseudo-random victim draws (instrumented builds only;
    /// stays 0 otherwise). Never reset — the LFSR itself never is, so
    /// warm-up draws are part of the count.
    lfsr_draws: u64,
    /// Per-line demand-hit counts since the line's last fill, saturating
    /// at 255 (instrumented builds only; empty otherwise). Indexed like
    /// `ways`.
    hit_counts: Vec<u8>,
    /// Departed-generation liveness tallies (see [`Liveness`]).
    live: LiveTally,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        let stride = cfg.ways() as usize;
        Cache {
            cfg,
            ways: vec![Way::default(); num_sets as usize * stride],
            repl: ReplBank::new(cfg.replacement(), num_sets as usize, stride),
            stride,
            set_mask: num_sets - 1,
            set_shift: num_sets.trailing_zeros(),
            lfsr: Lfsr16::default(),
            stats: CacheStats::default(),
            lfsr_draws: 0,
            hit_counts: if tlc_obs::ENABLED {
                vec![0; num_sets as usize * stride]
            } else {
                Vec::new()
            },
            live: LiveTally::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Lifetime pseudo-random victim draws (always 0 in uninstrumented
    /// builds, and for non-random replacement).
    pub fn lfsr_draws(&self) -> u64 {
        self.lfsr_draws
    }

    /// Lifetime block-liveness statistics, classifying still-resident
    /// lines by their hits so far (see [`Liveness`]; all-zero in
    /// uninstrumented builds).
    pub fn liveness(&self) -> Liveness {
        self.live.snapshot(
            self.ways.iter().zip(&self.hit_counts).filter(|(w, _)| w.valid).map(|(_, &h)| h),
        )
    }

    /// Clears the statistics (contents are preserved — used to discard
    /// warm-up transients).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn split(&self, line: LineAddr) -> (u64, u64) {
        (line.0 & self.set_mask, line.0 >> self.set_shift)
    }

    #[inline]
    fn join(&self, set: u64, tag: u64) -> LineAddr {
        LineAddr((tag << self.set_shift) | set)
    }

    /// Set index of a line in this cache.
    #[inline]
    pub fn set_index(&self, line: LineAddr) -> u64 {
        line.0 & self.set_mask
    }

    /// The ways of `set` as a slice.
    #[inline]
    fn set_ways(&self, set: u64) -> &[Way] {
        let base = set as usize * self.stride;
        &self.ways[base..base + self.stride]
    }

    /// Looks a line up **without** touching statistics or replacement
    /// state.
    pub fn probe(&self, line: LineAddr) -> Option<Slot> {
        let (set, tag) = self.split(line);
        self.set_ways(set)
            .iter()
            .position(|w| w.valid && w.tag == tag)
            .map(|way| Slot { set, way: way as u32 })
    }

    /// Whether the line is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.probe(line).is_some()
    }

    /// Performs a demand access: counts a hit or a miss, and on a hit
    /// updates replacement state and the dirty bit (`is_write`).
    ///
    /// Returns `true` on a hit. On a miss the cache is left unchanged —
    /// the hierarchy decides how to refill (conventional fill, exclusive
    /// swap, bypass, …).
    #[inline]
    pub fn access(&mut self, line: LineAddr, is_write: bool) -> bool {
        self.stats.accesses += 1;
        let (set, tag) = self.split(line);
        // Direct-mapped fast path: one tag compare, and no replacement
        // bookkeeping (a 1-way set's victim is way 0 under every policy).
        if self.stride == 1 {
            let w = &mut self.ways[set as usize];
            if w.valid && w.tag == tag {
                w.dirty |= is_write;
                self.stats.hits += 1;
                if tlc_obs::ENABLED {
                    let c = &mut self.hit_counts[set as usize];
                    *c = c.saturating_add(1);
                }
                return true;
            }
            return false;
        }
        let base = set as usize * self.stride;
        let mut hit = None;
        for i in 0..self.stride {
            let w = &mut self.ways[base + i];
            if w.valid && w.tag == tag {
                w.dirty |= is_write;
                hit = Some(i as u32);
                break;
            }
        }
        if let Some(way) = hit {
            self.repl.touch(set as usize, self.stride, way, self.cfg.ways());
            self.stats.hits += 1;
            if tlc_obs::ENABLED {
                let c = &mut self.hit_counts[base + way as usize];
                *c = c.saturating_add(1);
            }
            return true;
        }
        false
    }

    /// Installs `line`, choosing a victim by the replacement policy when
    /// the set is full. Returns the displaced line, if any.
    ///
    /// If the line is already present this is a no-op apart from merging
    /// the dirty bit (callers normally `access` first, so double-insertion
    /// indicates the hierarchy already holds the line elsewhere).
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        let (set, tag) = self.split(line);
        let ways = self.cfg.ways();
        let base = set as usize * self.stride;
        // Already present: merge dirty, refresh replacement.
        for i in 0..self.stride {
            let w = &mut self.ways[base + i];
            if w.valid && w.tag == tag {
                w.dirty |= dirty;
                self.repl.touch(set as usize, self.stride, i as u32, ways);
                return None;
            }
        }
        self.fill_after_miss(line, dirty)
    }

    /// As [`Cache::fill`], for callers that already know `line` is absent
    /// (typically because [`Cache::access`] just missed on it): skips the
    /// already-present scan. Every hierarchy's miss path refills through
    /// this — the scan it avoids is pure overhead there, and the miss
    /// paths dominate a design-space sweep's runtime.
    ///
    /// Behaviour (victim choice, replacement bookkeeping, statistics) is
    /// identical to [`Cache::fill`] on an absent line.
    #[inline]
    pub fn fill_after_miss(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        debug_assert!(!self.contains(line), "fill_after_miss: line already present");
        let (set, tag) = self.split(line);
        // Direct-mapped fast path: the victim is the set's only way under
        // every policy, so skip the free scan and replacement bookkeeping
        // (including the pseudo-random LFSR draw, whose value could only
        // ever select way 0 here).
        if self.stride == 1 {
            let w = &mut self.ways[set as usize];
            let old = *w;
            *w = Way { tag, valid: true, dirty };
            if tlc_obs::ENABLED {
                self.live.fill();
                if old.valid {
                    self.live.retire(self.hit_counts[set as usize]);
                }
                self.hit_counts[set as usize] = 0;
            }
            if old.valid {
                self.stats.evictions += 1;
                if old.dirty {
                    self.stats.dirty_evictions += 1;
                }
                return Some(Evicted { line: self.join(set, old.tag), dirty: old.dirty });
            }
            return None;
        }
        let ways = self.cfg.ways();
        let base = set as usize * self.stride;
        // Free way if any.
        if let Some(i) = (0..self.stride).find(|&i| !self.ways[base + i].valid) {
            self.ways[base + i] = Way { tag, valid: true, dirty };
            self.repl.filled(set as usize, self.stride, i as u32, ways);
            if tlc_obs::ENABLED {
                self.live.fill();
                self.hit_counts[base + i] = 0;
            }
            return None;
        }
        if tlc_obs::ENABLED && matches!(self.repl, ReplBank::Random) {
            self.lfsr_draws += 1;
        }
        let victim_way = self.repl.victim(set as usize, self.stride, ways, &mut self.lfsr);
        let v = self.ways[base + victim_way as usize];
        self.ways[base + victim_way as usize] = Way { tag, valid: true, dirty };
        self.repl.filled(set as usize, self.stride, victim_way, ways);
        if tlc_obs::ENABLED {
            self.live.fill();
            self.live.retire(self.hit_counts[base + victim_way as usize]);
            self.hit_counts[base + victim_way as usize] = 0;
        }
        self.stats.evictions += 1;
        if v.dirty {
            self.stats.dirty_evictions += 1;
        }
        Some(Evicted { line: self.join(set, v.tag), dirty: v.dirty })
    }

    /// If `line` is present, merges `dirty` into it and refreshes its
    /// replacement state — exactly what [`Cache::fill`] does for a
    /// resident line — and returns `true`. Returns `false` (cache
    /// untouched) otherwise.
    ///
    /// Equivalent to `if self.contains(line) { self.fill(line, dirty); true }`
    /// in one scan instead of two; the hierarchies use it to merge dirty
    /// L1 victims back into L2 on the write-back path.
    #[inline]
    pub fn merge_if_present(&mut self, line: LineAddr, dirty: bool) -> bool {
        let (set, tag) = self.split(line);
        let base = set as usize * self.stride;
        for i in 0..self.stride {
            let w = &mut self.ways[base + i];
            if w.valid && w.tag == tag {
                w.dirty |= dirty;
                self.repl.touch(set as usize, self.stride, i as u32, self.cfg.ways());
                return true;
            }
        }
        false
    }

    /// Whether every set holds a single way.
    #[inline]
    pub fn is_direct_mapped(&self) -> bool {
        self.stride == 1
    }

    /// Records a hit that the owning hierarchy resolved through its own
    /// same-line filter without probing the array, keeping hit/access
    /// counts identical to the unfiltered path.
    ///
    /// Only sound when the filter guarantees what [`Cache::access`] would
    /// have done anyway: the line is resident, and either the cache is
    /// direct-mapped (no replacement bookkeeping on hits) or the policy's
    /// touch is a no-op for a repeat of the most recent reference.
    #[inline]
    pub fn note_filtered_hit(&mut self) {
        self.stats.accesses += 1;
        self.stats.hits += 1;
    }

    /// Installs `line` into a specific slot previously obtained from
    /// [`Cache::probe`] or [`Cache::extract`]. Used by the exclusive swap
    /// to put the L1 victim into the way the requested line just left.
    ///
    /// Returns the displaced line if the slot held a valid *different*
    /// line.
    ///
    /// # Panics
    ///
    /// Panics if `slot.set` does not match the line's set index in this
    /// cache, or `slot.way` is out of range.
    pub fn fill_at(&mut self, line: LineAddr, dirty: bool, slot: Slot) -> Option<Evicted> {
        let (set, tag) = self.split(line);
        assert_eq!(set, slot.set, "fill_at: slot set does not match line");
        assert!((slot.way as usize) < self.stride, "fill_at: way out of range");
        let base = set as usize * self.stride;
        let old = self.ways[base + slot.way as usize];
        self.ways[base + slot.way as usize] = Way { tag, valid: true, dirty };
        self.repl.filled(set as usize, self.stride, slot.way, self.cfg.ways());
        if tlc_obs::ENABLED {
            self.live.fill();
            if old.valid {
                self.live.retire(self.hit_counts[base + slot.way as usize]);
            }
            self.hit_counts[base + slot.way as usize] = 0;
        }
        if old.valid && old.tag != tag {
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.dirty_evictions += 1;
            }
            Some(Evicted { line: self.join(set, old.tag), dirty: old.dirty })
        } else {
            None
        }
    }

    /// Removes `line` from the cache, returning its dirty bit and the slot
    /// it occupied. The slot becomes free.
    pub fn extract(&mut self, line: LineAddr) -> Option<(bool, Slot)> {
        let (set, tag) = self.split(line);
        let base = set as usize * self.stride;
        for i in 0..self.stride {
            let w = &mut self.ways[base + i];
            if w.valid && w.tag == tag {
                let dirty = w.dirty;
                *w = Way::default();
                if tlc_obs::ENABLED {
                    self.live.retire(self.hit_counts[base + i]);
                    self.hit_counts[base + i] = 0;
                }
                return Some((dirty, Slot { set, way: i as u32 }));
            }
        }
        None
    }

    /// Invalidates `line` if present; returns whether it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        self.extract(line).is_some()
    }

    /// Drops all contents (statistics are preserved; resident lines'
    /// liveness generations end here).
    pub fn flush(&mut self) {
        if tlc_obs::ENABLED {
            for (w, c) in self.ways.iter().zip(self.hit_counts.iter_mut()) {
                if w.valid {
                    self.live.retire(*c);
                }
                *c = 0;
            }
        }
        for w in &mut self.ways {
            *w = Way::default();
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> u64 {
        self.ways.iter().filter(|w| w.valid).count() as u64
    }

    /// Iterates over all resident lines (for auditors and tests).
    pub fn iter_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.ways.chunks(self.stride).enumerate().flat_map(move |(set, ways)| {
            ways.iter().filter(|w| w.valid).map(move |w| self.join(set as u64, w.tag))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Associativity, ReplacementKind};
    use tlc_trace::Addr;

    fn line(n: u64) -> LineAddr {
        LineAddr(n)
    }

    fn dm_cache(lines: u64) -> Cache {
        Cache::new(
            CacheConfig::new(lines * 16, 16, Associativity::Direct, ReplacementKind::Lru).unwrap(),
        )
    }

    fn sa_cache(lines: u64, ways: u32, repl: ReplacementKind) -> Cache {
        Cache::new(CacheConfig::new(lines * 16, 16, Associativity::SetAssoc(ways), repl).unwrap())
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = dm_cache(64);
        assert!(!c.access(line(5), false));
        assert_eq!(c.fill(line(5), false), None);
        assert!(c.access(line(5), false));
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = dm_cache(64);
        c.fill(line(3), false);
        // line 3 + 64 maps to the same set.
        let ev = c.fill(line(3 + 64), true);
        assert_eq!(ev, Some(Evicted { line: line(3), dirty: false }));
        assert!(!c.contains(line(3)));
        assert!(c.contains(line(67)));
    }

    #[test]
    fn dirty_bit_set_by_write_hit_and_reported_on_eviction() {
        let mut c = dm_cache(64);
        c.fill(line(3), false);
        assert!(c.access(line(3), true)); // write hit marks dirty
        let ev = c.fill(line(67), false).unwrap();
        assert!(ev.dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn set_assoc_holds_conflicting_lines() {
        let mut c = sa_cache(64, 4, ReplacementKind::Lru);
        // 16 sets; lines 0,16,32,48 share set 0 — all four fit.
        for i in 0..4 {
            c.fill(line(i * 16), false);
        }
        for i in 0..4 {
            assert!(c.contains(line(i * 16)));
        }
        // A fifth conflicting line evicts the LRU one (line 0).
        let ev = c.fill(line(4 * 16), false).unwrap();
        assert_eq!(ev.line, line(0));
    }

    #[test]
    fn lru_order_respected_across_touches() {
        let mut c = sa_cache(32, 2, ReplacementKind::Lru);
        // 16 sets; lines 0 and 16 share set 0.
        c.fill(line(0), false);
        c.fill(line(16), false);
        assert!(c.access(line(0), false)); // 16 becomes LRU
        let ev = c.fill(line(32), false).unwrap();
        assert_eq!(ev.line, line(16));
    }

    #[test]
    fn fill_existing_line_merges_dirty_without_eviction() {
        let mut c = dm_cache(64);
        c.fill(line(9), false);
        assert_eq!(c.fill(line(9), true), None);
        let ev = c.fill(line(9 + 64), false).unwrap();
        assert!(ev.dirty, "merged dirty bit lost");
    }

    #[test]
    fn extract_frees_slot_and_reports_dirty() {
        let mut c = sa_cache(32, 2, ReplacementKind::Lru);
        c.fill(line(0), true);
        let (dirty, slot) = c.extract(line(0)).unwrap();
        assert!(dirty);
        assert!(!c.contains(line(0)));
        assert_eq!(slot.set, 0);
        // Slot is reusable without eviction.
        assert_eq!(c.fill(line(16), false), None);
        assert_eq!(c.extract(line(999)), None);
    }

    #[test]
    fn fill_at_swaps_into_specific_way() {
        let mut c = sa_cache(32, 2, ReplacementKind::Lru);
        c.fill(line(0), false);
        c.fill(line(16), false);
        let slot = c.probe(line(16)).unwrap();
        // Replace line 16 specifically with line 32 (same set).
        let ev = c.fill_at(line(32), true, slot).unwrap();
        assert_eq!(ev.line, line(16));
        assert!(c.contains(line(0)));
        assert!(c.contains(line(32)));
    }

    #[test]
    #[should_panic(expected = "slot set")]
    fn fill_at_rejects_wrong_set() {
        let mut c = sa_cache(32, 2, ReplacementKind::Lru);
        c.fill(line(0), false);
        let slot = c.probe(line(0)).unwrap();
        // line 1 belongs to set 1, not set 0.
        let _ = c.fill_at(line(1), false, slot);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = sa_cache(32, 2, ReplacementKind::Lru);
        c.fill(line(0), false);
        c.fill(line(16), false);
        // Probing line 0 must NOT refresh its LRU position.
        for _ in 0..5 {
            assert!(c.probe(line(0)).is_some());
        }
        let ev = c.fill(line(32), false).unwrap();
        assert_eq!(ev.line, line(0), "probe disturbed LRU state");
        assert_eq!(c.stats().accesses, 0, "probe counted as access");
    }

    #[test]
    fn resident_and_iteration() {
        let mut c = dm_cache(16);
        for i in [1u64, 5, 9] {
            c.fill(line(i), false);
        }
        assert_eq!(c.resident_lines(), 3);
        let mut got: Vec<u64> = c.iter_lines().map(|l| l.0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 5, 9]);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn tag_reconstruction_across_large_addresses() {
        let mut c = dm_cache(256);
        let big = Addr::new(0x7FFF_FFF0).line(16);
        c.fill(big, false);
        assert!(c.contains(big));
        let conflicting = LineAddr(big.0 + 256);
        let ev = c.fill(conflicting, false).unwrap();
        assert_eq!(ev.line, big, "evicted line address reconstructed incorrectly");
    }

    #[test]
    fn fully_associative_uses_whole_capacity() {
        let mut c = Cache::new(
            CacheConfig::new(16 * 16, 16, Associativity::Full, ReplacementKind::Lru).unwrap(),
        );
        for i in 0..16 {
            // Addresses that would conflict violently in a DM cache.
            c.fill(line(i * 1024), false);
        }
        assert_eq!(c.resident_lines(), 16);
        let ev = c.fill(line(999_424), false).unwrap();
        assert_eq!(ev.line, line(0), "FA LRU should evict the oldest line");
    }

    #[test]
    fn srrip_cache_keeps_reused_line() {
        let mut c = sa_cache(32, 2, ReplacementKind::Srrip);
        // 16 sets; lines 0, 16, 32 share set 0.
        c.fill(line(0), false);
        c.fill(line(16), false);
        assert!(c.access(line(0), false)); // promote line 0 to RRPV 0
                                           // Line 16 sits at "long" (2), line 0 at 0: ageing reaches 16 first.
        let ev = c.fill(line(32), false).unwrap();
        assert_eq!(ev.line, line(16), "SRRIP must evict the never-reused way");
        assert!(c.contains(line(0)));
    }

    #[test]
    fn liveness_classifies_generations() {
        if !tlc_obs::ENABLED {
            return;
        }
        let mut c = dm_cache(16);
        c.fill(line(1), false);
        c.access(line(1), false);
        c.access(line(1), false); // generation A: 2 hits
        c.fill(line(1 + 16), false); // evicts A; generation B: 0 hits, resident
        let lv = c.liveness();
        assert_eq!(lv.fills, 2);
        assert_eq!(lv.dead_on_arrival, 1, "the resident untouched line counts as dead");
        assert_eq!(lv.live_fills, 1);
        assert_eq!(lv.multi_hit, 1);
    }

    #[test]
    fn liveness_invariant_across_extract_and_fill_at() {
        if !tlc_obs::ENABLED {
            return;
        }
        let mut c = sa_cache(32, 2, ReplacementKind::Lru);
        c.fill(line(0), false);
        c.access(line(0), false);
        let (_, slot) = c.extract(line(0)).unwrap(); // retire: 1 hit, live
        c.fill_at(line(16), false, slot); // new generation
        c.fill(line(32), false); // free way, third generation
        let lv = c.liveness();
        assert_eq!(lv.fills, 3);
        assert_eq!(lv.fills, lv.dead_on_arrival + lv.live_fills);
        assert_eq!(lv.dead_on_arrival, 2, "the two untouched residents are dead so far");
        assert_eq!(lv.multi_hit, 0);
        c.flush();
        assert_eq!(c.liveness(), lv, "flush retires residents without changing the tallies");
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = dm_cache(16);
        c.fill(line(2), false);
        c.access(line(2), false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.contains(line(2)));
    }
}
