//! A single physically-indexed cache.
//!
//! [`Cache`] operates entirely on [`LineAddr`]s — the hierarchy layers
//! translate byte addresses once and pass line numbers down. Besides the
//! ordinary `access` path it exposes the primitives the exclusive policy
//! needs: [`Cache::extract`] (remove a line, reclaiming its way) and
//! [`Cache::fill_at`] (install into a specific way), which together
//! implement the swap of the paper's §8.

use crate::config::CacheConfig;
use crate::replacement::{Lfsr16, ReplState};
use crate::stats::CacheStats;
use tlc_trace::LineAddr;

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The displaced line.
    pub line: LineAddr,
    /// Whether it held modified data.
    pub dirty: bool,
}

/// Location of a line inside a cache (set and way), returned by probes so
/// callers can target the same slot later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Set index.
    pub set: u64,
    /// Way index within the set.
    pub way: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
}

#[derive(Debug)]
struct Set {
    ways: Box<[Way]>,
    repl: ReplState,
}

/// One level of cache. See the module docs.
///
/// # Examples
///
/// ```
/// use tlc_cache::{Associativity, Cache, CacheConfig};
/// use tlc_trace::{Addr, LineAddr};
///
/// # fn main() -> Result<(), tlc_cache::ConfigError> {
/// let mut c = Cache::new(CacheConfig::paper(1024, Associativity::Direct)?);
/// let line = Addr::new(0x1234).line(16);
/// assert!(!c.access(line, false));       // cold miss
/// c.fill(line, false);
/// assert!(c.access(line, false));        // now hits
/// assert_eq!(c.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Set>,
    set_mask: u64,
    set_shift: u32,
    lfsr: Lfsr16,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        let ways = cfg.ways();
        let sets = (0..num_sets)
            .map(|_| Set {
                ways: vec![Way::default(); ways as usize].into_boxed_slice(),
                repl: ReplState::new(cfg.replacement(), ways),
            })
            .collect();
        Cache {
            cfg,
            sets,
            set_mask: num_sets - 1,
            set_shift: num_sets.trailing_zeros(),
            lfsr: Lfsr16::default(),
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears the statistics (contents are preserved — used to discard
    /// warm-up transients).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn split(&self, line: LineAddr) -> (u64, u64) {
        (line.0 & self.set_mask, line.0 >> self.set_shift)
    }

    #[inline]
    fn join(&self, set: u64, tag: u64) -> LineAddr {
        LineAddr((tag << self.set_shift) | set)
    }

    /// Set index of a line in this cache.
    #[inline]
    pub fn set_index(&self, line: LineAddr) -> u64 {
        line.0 & self.set_mask
    }

    /// Looks a line up **without** touching statistics or replacement
    /// state.
    pub fn probe(&self, line: LineAddr) -> Option<Slot> {
        let (set, tag) = self.split(line);
        let s = &self.sets[set as usize];
        s.ways
            .iter()
            .position(|w| w.valid && w.tag == tag)
            .map(|way| Slot { set, way: way as u32 })
    }

    /// Whether the line is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.probe(line).is_some()
    }

    /// Performs a demand access: counts a hit or a miss, and on a hit
    /// updates replacement state and the dirty bit (`is_write`).
    ///
    /// Returns `true` on a hit. On a miss the cache is left unchanged —
    /// the hierarchy decides how to refill (conventional fill, exclusive
    /// swap, bypass, …).
    #[inline]
    pub fn access(&mut self, line: LineAddr, is_write: bool) -> bool {
        self.stats.accesses += 1;
        let (set, tag) = self.split(line);
        let s = &mut self.sets[set as usize];
        for (i, w) in s.ways.iter_mut().enumerate() {
            if w.valid && w.tag == tag {
                w.dirty |= is_write;
                s.repl.touch(i as u32);
                self.stats.hits += 1;
                return true;
            }
        }
        false
    }

    /// Installs `line`, choosing a victim by the replacement policy when
    /// the set is full. Returns the displaced line, if any.
    ///
    /// If the line is already present this is a no-op apart from merging
    /// the dirty bit (callers normally `access` first, so double-insertion
    /// indicates the hierarchy already holds the line elsewhere).
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        let (set, tag) = self.split(line);
        let ways = self.cfg.ways();
        let s = &mut self.sets[set as usize];
        // Already present: merge dirty, refresh replacement.
        for (i, w) in s.ways.iter_mut().enumerate() {
            if w.valid && w.tag == tag {
                w.dirty |= dirty;
                s.repl.touch(i as u32);
                return None;
            }
        }
        // Free way if any.
        if let Some(i) = s.ways.iter().position(|w| !w.valid) {
            s.ways[i] = Way { tag, valid: true, dirty };
            s.repl.filled(i as u32);
            return None;
        }
        let victim_way = s.repl.victim(ways, &mut self.lfsr);
        let v = s.ways[victim_way as usize];
        s.ways[victim_way as usize] = Way { tag, valid: true, dirty };
        s.repl.filled(victim_way);
        self.stats.evictions += 1;
        if v.dirty {
            self.stats.dirty_evictions += 1;
        }
        Some(Evicted { line: self.join(set, v.tag), dirty: v.dirty })
    }

    /// Installs `line` into a specific slot previously obtained from
    /// [`Cache::probe`] or [`Cache::extract`]. Used by the exclusive swap
    /// to put the L1 victim into the way the requested line just left.
    ///
    /// Returns the displaced line if the slot held a valid *different*
    /// line.
    ///
    /// # Panics
    ///
    /// Panics if `slot.set` does not match the line's set index in this
    /// cache, or `slot.way` is out of range.
    pub fn fill_at(&mut self, line: LineAddr, dirty: bool, slot: Slot) -> Option<Evicted> {
        let (set, tag) = self.split(line);
        assert_eq!(set, slot.set, "fill_at: slot set does not match line");
        let s = &mut self.sets[set as usize];
        assert!((slot.way as usize) < s.ways.len(), "fill_at: way out of range");
        let old = s.ways[slot.way as usize];
        s.ways[slot.way as usize] = Way { tag, valid: true, dirty };
        s.repl.filled(slot.way);
        if old.valid && old.tag != tag {
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.dirty_evictions += 1;
            }
            Some(Evicted { line: self.join(set, old.tag), dirty: old.dirty })
        } else {
            None
        }
    }

    /// Removes `line` from the cache, returning its dirty bit and the slot
    /// it occupied. The slot becomes free.
    pub fn extract(&mut self, line: LineAddr) -> Option<(bool, Slot)> {
        let (set, tag) = self.split(line);
        let s = &mut self.sets[set as usize];
        for (i, w) in s.ways.iter_mut().enumerate() {
            if w.valid && w.tag == tag {
                let dirty = w.dirty;
                *w = Way::default();
                return Some((dirty, Slot { set, way: i as u32 }));
            }
        }
        None
    }

    /// Invalidates `line` if present; returns whether it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        self.extract(line).is_some()
    }

    /// Drops all contents (statistics are preserved).
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            for w in s.ways.iter_mut() {
                *w = Way::default();
            }
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> u64 {
        self.sets
            .iter()
            .map(|s| s.ways.iter().filter(|w| w.valid).count() as u64)
            .sum()
    }

    /// Iterates over all resident lines (for auditors and tests).
    pub fn iter_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.sets.iter().enumerate().flat_map(move |(set, s)| {
            s.ways
                .iter()
                .filter(|w| w.valid)
                .map(move |w| self.join(set as u64, w.tag))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Associativity, ReplacementKind};
    use tlc_trace::Addr;

    fn line(n: u64) -> LineAddr {
        LineAddr(n)
    }

    fn dm_cache(lines: u64) -> Cache {
        Cache::new(
            CacheConfig::new(lines * 16, 16, Associativity::Direct, ReplacementKind::Lru)
                .unwrap(),
        )
    }

    fn sa_cache(lines: u64, ways: u32, repl: ReplacementKind) -> Cache {
        Cache::new(
            CacheConfig::new(lines * 16, 16, Associativity::SetAssoc(ways), repl).unwrap(),
        )
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = dm_cache(64);
        assert!(!c.access(line(5), false));
        assert_eq!(c.fill(line(5), false), None);
        assert!(c.access(line(5), false));
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = dm_cache(64);
        c.fill(line(3), false);
        // line 3 + 64 maps to the same set.
        let ev = c.fill(line(3 + 64), true);
        assert_eq!(ev, Some(Evicted { line: line(3), dirty: false }));
        assert!(!c.contains(line(3)));
        assert!(c.contains(line(67)));
    }

    #[test]
    fn dirty_bit_set_by_write_hit_and_reported_on_eviction() {
        let mut c = dm_cache(64);
        c.fill(line(3), false);
        assert!(c.access(line(3), true)); // write hit marks dirty
        let ev = c.fill(line(67), false).unwrap();
        assert!(ev.dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn set_assoc_holds_conflicting_lines() {
        let mut c = sa_cache(64, 4, ReplacementKind::Lru);
        // 16 sets; lines 0,16,32,48 share set 0 — all four fit.
        for i in 0..4 {
            c.fill(line(i * 16), false);
        }
        for i in 0..4 {
            assert!(c.contains(line(i * 16)));
        }
        // A fifth conflicting line evicts the LRU one (line 0).
        let ev = c.fill(line(4 * 16), false).unwrap();
        assert_eq!(ev.line, line(0));
    }

    #[test]
    fn lru_order_respected_across_touches() {
        let mut c = sa_cache(32, 2, ReplacementKind::Lru);
        // 16 sets; lines 0 and 16 share set 0.
        c.fill(line(0), false);
        c.fill(line(16), false);
        assert!(c.access(line(0), false)); // 16 becomes LRU
        let ev = c.fill(line(32), false).unwrap();
        assert_eq!(ev.line, line(16));
    }

    #[test]
    fn fill_existing_line_merges_dirty_without_eviction() {
        let mut c = dm_cache(64);
        c.fill(line(9), false);
        assert_eq!(c.fill(line(9), true), None);
        let ev = c.fill(line(9 + 64), false).unwrap();
        assert!(ev.dirty, "merged dirty bit lost");
    }

    #[test]
    fn extract_frees_slot_and_reports_dirty() {
        let mut c = sa_cache(32, 2, ReplacementKind::Lru);
        c.fill(line(0), true);
        let (dirty, slot) = c.extract(line(0)).unwrap();
        assert!(dirty);
        assert!(!c.contains(line(0)));
        assert_eq!(slot.set, 0);
        // Slot is reusable without eviction.
        assert_eq!(c.fill(line(16), false), None);
        assert_eq!(c.extract(line(999)), None);
    }

    #[test]
    fn fill_at_swaps_into_specific_way() {
        let mut c = sa_cache(32, 2, ReplacementKind::Lru);
        c.fill(line(0), false);
        c.fill(line(16), false);
        let slot = c.probe(line(16)).unwrap();
        // Replace line 16 specifically with line 32 (same set).
        let ev = c.fill_at(line(32), true, slot).unwrap();
        assert_eq!(ev.line, line(16));
        assert!(c.contains(line(0)));
        assert!(c.contains(line(32)));
    }

    #[test]
    #[should_panic(expected = "slot set")]
    fn fill_at_rejects_wrong_set() {
        let mut c = sa_cache(32, 2, ReplacementKind::Lru);
        c.fill(line(0), false);
        let slot = c.probe(line(0)).unwrap();
        // line 1 belongs to set 1, not set 0.
        let _ = c.fill_at(line(1), false, slot);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = sa_cache(32, 2, ReplacementKind::Lru);
        c.fill(line(0), false);
        c.fill(line(16), false);
        // Probing line 0 must NOT refresh its LRU position.
        for _ in 0..5 {
            assert!(c.probe(line(0)).is_some());
        }
        let ev = c.fill(line(32), false).unwrap();
        assert_eq!(ev.line, line(0), "probe disturbed LRU state");
        assert_eq!(c.stats().accesses, 0, "probe counted as access");
    }

    #[test]
    fn resident_and_iteration() {
        let mut c = dm_cache(16);
        for i in [1u64, 5, 9] {
            c.fill(line(i), false);
        }
        assert_eq!(c.resident_lines(), 3);
        let mut got: Vec<u64> = c.iter_lines().map(|l| l.0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 5, 9]);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn tag_reconstruction_across_large_addresses() {
        let mut c = dm_cache(256);
        let big = Addr::new(0x7FFF_FFF0).line(16);
        c.fill(big, false);
        assert!(c.contains(big));
        let conflicting = LineAddr(big.0 + 256);
        let ev = c.fill(conflicting, false).unwrap();
        assert_eq!(ev.line, big, "evicted line address reconstructed incorrectly");
    }

    #[test]
    fn fully_associative_uses_whole_capacity() {
        let mut c = Cache::new(
            CacheConfig::new(16 * 16, 16, Associativity::Full, ReplacementKind::Lru).unwrap(),
        );
        for i in 0..16 {
            // Addresses that would conflict violently in a DM cache.
            c.fill(line(i * 1024), false);
        }
        assert_eq!(c.resident_lines(), 16);
        let ev = c.fill(line(999_424), false).unwrap();
        assert_eq!(ev.line, line(0), "FA LRU should evict the oldest line");
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = dm_cache(16);
        c.fill(line(2), false);
        c.access(line(2), false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.contains(line(2)));
    }
}
