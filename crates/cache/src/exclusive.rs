//! Two-level **exclusive** caching — the paper's contribution (§8).
//!
//! The policy differs from the conventional hierarchy in two ways:
//!
//! 1. **Off-chip refills bypass the L2.** On an L1+L2 miss, "the desired
//!    line is loaded directly into the first-level cache from off-chip,
//!    while the first-level victim is sent to the second-level cache."
//!    The L2 therefore fills up with *victims* — content distinct from
//!    the L1s — raising effective on-chip capacity toward `2x + y`.
//!
//! 2. **L1 victims are written into the L2 on every L1 miss.** When the
//!    miss hits in L2 and the victim maps to the *same L2 set* the
//!    requested line is leaving, the victim takes the departing line's
//!    way — a swap, producing exclusion (paper Figure 21-a). When the
//!    victim maps elsewhere, the requested line's L2 copy stays where it
//!    is and the victim updates (or is inserted into) its own set —
//!    Figure 21-b's inclusion case.
//!
//! A mapping conflict in a direct-mapped L2 therefore resolves with the
//! two conflicting lines *split across the levels*, giving a limited form
//! of associativity on top of the capacity gain.

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::hierarchy::{MemorySystem, ServiceLevel};
use crate::stats::HierarchyStats;
use tlc_trace::{AccessKind, MemRef};

/// Split L1 I/D caches over a unified L2 with the exclusive (victim-swap)
/// policy of §8.
///
/// # Examples
///
/// The Figure 21-a scenario: two lines that conflict in both levels end
/// up resident simultaneously, one per level:
///
/// ```
/// use tlc_cache::{Associativity, CacheConfig, ExclusiveTwoLevel, MemorySystem, ServiceLevel};
/// use tlc_trace::{Addr, MemRef};
///
/// # fn main() -> Result<(), tlc_cache::ConfigError> {
/// // 4-line L1, 16-line L2, both direct-mapped (the paper's Figure 21).
/// let l1 = CacheConfig::paper(64, Associativity::Direct)?;
/// let l2 = CacheConfig::paper(256, Associativity::Direct)?;
/// let mut sys = ExclusiveTwoLevel::new(l1, l2);
/// let a = Addr::new(0x000);          // L1 line 0, L2 line 0
/// let e = Addr::new(0x100);          // L1 line 0, L2 line 0 — conflicts in both
/// sys.access(MemRef::load(a));
/// sys.access(MemRef::load(e));       // a swapped into L2
/// // Alternating references now ping-pong between the levels, never
/// // going off-chip again:
/// assert_eq!(sys.access(MemRef::load(a)), ServiceLevel::L2);
/// assert_eq!(sys.access(MemRef::load(e)), ServiceLevel::L2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ExclusiveTwoLevel {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    line_bytes: u64,
    stats: HierarchyStats,
    /// Line of the most recent instruction fetch (`u64::MAX` when unknown
    /// or the filter is disabled). The last fetched line is resident in
    /// L1I by construction — a hit left it in place, both miss paths fill
    /// it — so a repeat fetch is a guaranteed L1 hit, resolved without
    /// probing the array. Only maintained for a direct-mapped L1I, where
    /// a repeat hit has no replacement side effects to reproduce.
    last_fetch: u64,
}

impl ExclusiveTwoLevel {
    /// Builds the hierarchy. Both L1 caches use `l1_cfg`; the unified L2
    /// uses `l2_cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configurations disagree on line size.
    pub fn new(l1_cfg: CacheConfig, l2_cfg: CacheConfig) -> Self {
        assert_eq!(l1_cfg.line_bytes(), l2_cfg.line_bytes(), "L1 and L2 must share a line size");
        ExclusiveTwoLevel {
            l1i: Cache::new(l1_cfg),
            l1d: Cache::new(l1_cfg),
            l2: Cache::new(l2_cfg),
            line_bytes: l1_cfg.line_bytes(),
            stats: HierarchyStats::default(),
            last_fetch: u64::MAX,
        }
    }

    /// The instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The unified second-level cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Sends an L1 victim to the L2. `freed_slot` is the slot the
    /// requested line is vacating when the miss hit in L2 (the swap
    /// target when the victim maps to the same set).
    fn send_victim_to_l2(
        &mut self,
        victim: crate::cache::Evicted,
        freed_slot: Option<crate::cache::Slot>,
    ) {
        if self.l2.merge_if_present(victim.line, victim.dirty) {
            // Figure 21-b: the victim's L2 copy already exists — the write
            // back "leaves the second-level cache unchanged" apart from
            // the dirty bit.
            return;
        }
        if let Some(slot) = freed_slot {
            if self.l2.set_index(victim.line) == slot.set {
                // Figure 21-a: the victim takes the way the requested line
                // is leaving — the swap that produces exclusion. The line
                // displaced here is the requested line itself, which now
                // lives in L1, so nothing goes off-chip.
                let displaced = self.l2.fill_at(victim.line, victim.dirty, slot);
                debug_assert!(displaced.is_some(), "swap should displace the requested line");
                return;
            }
        }
        // Victim inserted into its own set; a genuine L2 eviction may
        // result.
        if let Some(ev) = self.l2.fill_after_miss(victim.line, victim.dirty) {
            if ev.dirty {
                self.stats.offchip_writebacks += 1;
            }
        }
    }
}

impl MemorySystem for ExclusiveTwoLevel {
    #[inline]
    fn access(&mut self, r: MemRef) -> ServiceLevel {
        let line = r.addr.line(self.line_bytes);
        let is_write = r.kind == AccessKind::Store;
        let is_fetch = r.kind == AccessKind::InstrFetch;
        if is_fetch {
            self.stats.instructions += 1;
            if line.0 == self.last_fetch {
                self.l1i.note_filtered_hit();
                return ServiceLevel::L1;
            }
            if self.l1i.is_direct_mapped() {
                self.last_fetch = line.0;
            }
            if self.l1i.access(line, false) {
                return ServiceLevel::L1;
            }
            self.stats.l1i_misses += 1;
        } else {
            self.stats.data_refs += 1;
            if self.l1d.access(line, is_write) {
                return ServiceLevel::L1;
            }
            self.stats.l1d_misses += 1;
        }

        if self.l2.access(line, false) {
            self.stats.l2_hits += 1;
            // The requested line moves (logically) from L2 to L1; its slot
            // is the swap target for the L1 victim.
            let (_dirty, slot) =
                self.l2.extract(line).expect("L2 hit implies the line is extractable");
            let l1 = if is_fetch { &mut self.l1i } else { &mut self.l1d };
            let victim = l1.fill_after_miss(line, is_write || _dirty);
            match victim {
                Some(v) => {
                    // Re-install the requested line in L2 only if the
                    // victim does not land in its slot; physically the
                    // hardware reads the line out and the victim write may
                    // or may not overwrite it. We model "stays in L2" by
                    // re-inserting when the victim goes elsewhere.
                    if self.l2.set_index(v.line) == slot.set && !self.l2.contains(v.line) {
                        // Swap: victim takes the requested line's way;
                        // requested line now only in L1 (exclusion).
                        self.l2.fill_at(v.line, v.dirty, slot);
                    } else {
                        // Requested line keeps its L2 copy (inclusion for
                        // it); victim handled separately.
                        self.l2.fill_at(line, _dirty, slot);
                        self.send_victim_to_l2(v, None);
                    }
                }
                None => {
                    // Cold L1 slot: nothing to send back; the requested
                    // line keeps its L2 copy.
                    self.l2.fill_at(line, _dirty, slot);
                }
            }
            ServiceLevel::L2
        } else {
            self.stats.l2_misses += 1;
            // Off-chip refill goes straight to L1, bypassing L2 (§8).
            let l1 = if is_fetch { &mut self.l1i } else { &mut self.l1d };
            if let Some(v) = l1.fill_after_miss(line, is_write) {
                self.send_victim_to_l2(v, None);
            }
            ServiceLevel::Memory
        }
    }

    fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
    }

    fn invalidate_line(&mut self, line: tlc_trace::LineAddr) -> u32 {
        self.last_fetch = u64::MAX; // the filtered line may be the target
        let mut purged = 0;
        purged += self.l1i.invalidate(line) as u32;
        purged += self.l1d.invalidate(line) as u32;
        purged += self.l2.invalidate(line) as u32;
        purged
    }

    fn describe(&self) -> String {
        format!(
            "exclusive two-level: split L1 {} / unified L2 {}",
            self.l1i.config(),
            self.l2.config()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Associativity;
    use tlc_trace::Addr;

    /// Figure 21 geometry: 4-line (64B) DM L1s, 16-line (256B) DM L2.
    fn fig21() -> ExclusiveTwoLevel {
        ExclusiveTwoLevel::new(
            CacheConfig::paper(64, Associativity::Direct).unwrap(),
            CacheConfig::paper(256, Associativity::Direct).unwrap(),
        )
    }

    #[test]
    fn fig21a_l2_conflict_gives_exclusion() {
        // A and E map to the same line in both caches.
        let mut s = fig21();
        let a = Addr::new(0x000);
        let e = Addr::new(0x100);
        s.access(MemRef::load(a)); // off-chip → L1 only (bypass)
        s.access(MemRef::load(e)); // off-chip → L1; victim A → L2
        let (la, le) = (a.line(16), e.line(16));
        assert!(s.l1d().contains(le) && !s.l1d().contains(la));
        assert!(s.l2().contains(la) && !s.l2().contains(le), "A should be the L2 resident");
        // Alternating references swap the pair without off-chip traffic.
        for (i, addr) in [a, e, a, e].iter().enumerate() {
            assert_eq!(
                s.access(MemRef::load(*addr)),
                ServiceLevel::L2,
                "reference {i} should be an on-chip swap hit"
            );
        }
        // Exactly one of the pair per level at all times.
        assert!(s.l1d().contains(le) ^ s.l1d().contains(la));
        assert!(s.l2().contains(le) ^ s.l2().contains(la));
        assert_eq!(s.stats().l2_misses, 2, "only the two cold misses go off-chip");
    }

    #[test]
    fn fig21b_l1_only_conflict_keeps_inclusion() {
        // A (0x000) and B (0x040): same L1 line (4-line L1 ⇒ index bits
        // 64B), different L2 lines.
        let mut s = fig21();
        let a = Addr::new(0x000);
        let b = Addr::new(0x040);
        s.access(MemRef::load(a));
        s.access(MemRef::load(b)); // B → L1, victim A → its own L2 line
                                   // A's reference: hits L2, moves to L1; victim B goes to B's own L2
                                   // line; A's L2 copy... A moved out of L2 into L1 (same set? no —
                                   // A and B are in different L2 sets, so no swap: A's copy stays).
        assert_eq!(s.access(MemRef::load(a)), ServiceLevel::L2);
        // Inclusion: A now in L1 *and* still in L2.
        assert!(s.l1d().contains(a.line(16)));
        assert!(s.l2().contains(a.line(16)), "Fig 21-b: L1-only conflict must keep inclusion");
        assert!(s.l2().contains(b.line(16)), "victim B must be in L2");
    }

    #[test]
    fn offchip_refill_bypasses_l2() {
        let mut s = fig21();
        let a = Addr::new(0x200);
        s.access(MemRef::load(a));
        assert!(s.l1d().contains(a.line(16)));
        assert!(!s.l2().contains(a.line(16)), "off-chip refill must not fill L2");
    }

    #[test]
    fn capacity_exceeds_l2_alone() {
        // Working set of L1 + L2 lines with the limiting-case geometry
        // (L2 sets == L1 lines × …): here both DM. Walk 2x+y distinct
        // lines that tile the caches and verify far more than y lines are
        // on-chip.
        let mut s = ExclusiveTwoLevel::new(
            CacheConfig::paper(64, Associativity::Direct).unwrap(), // 4 lines
            CacheConfig::paper(256, Associativity::Direct).unwrap(), // 16 lines
        );
        // 20 distinct lines (= l1i 4 unused; data side x=4, y=16 ⇒ 2x+y=24).
        for i in 0..20u64 {
            s.access(MemRef::load(Addr::new(i * 16)));
        }
        let resident = s.l1d().resident_lines() + s.l2().resident_lines();
        assert!(
            resident >= 18,
            "exclusive hierarchy should hold nearly 20 lines on-chip, has {resident}"
        );
    }

    #[test]
    fn duplication_is_rare_after_warmup() {
        let mut s = ExclusiveTwoLevel::new(
            CacheConfig::paper(1024, Associativity::Direct).unwrap(),
            CacheConfig::paper(4096, Associativity::SetAssoc(4)).unwrap(),
        );
        // Random-ish walk over 16KB.
        for i in 0..50_000u64 {
            s.access(MemRef::load(Addr::new((i * 52) % 16384)));
        }
        let dup = s.l1d().iter_lines().filter(|l| s.l2().contains(*l)).count();
        let resident = s.l1d().resident_lines() as usize;
        assert!(
            (dup as f64) < 0.25 * resident as f64,
            "exclusive hierarchy too duplicated: {dup}/{resident}"
        );
    }

    #[test]
    fn beats_conventional_on_both_level_conflicts() {
        use crate::twolevel::ConventionalTwoLevel;
        let l1 = CacheConfig::paper(64, Associativity::Direct).unwrap();
        let l2 = CacheConfig::paper(256, Associativity::Direct).unwrap();
        let mut ex = ExclusiveTwoLevel::new(l1, l2);
        let mut conv = ConventionalTwoLevel::new(l1, l2);
        // Alternate two lines that conflict in both levels.
        for _ in 0..100 {
            for addr in [Addr::new(0x000), Addr::new(0x100)] {
                ex.access(MemRef::load(addr));
                conv.access(MemRef::load(addr));
            }
        }
        assert!(
            ex.stats().l2_misses < conv.stats().l2_misses,
            "exclusive {} vs conventional {} off-chip misses",
            ex.stats().l2_misses,
            conv.stats().l2_misses
        );
        // Exclusive keeps the ping-pong entirely on chip after warmup.
        assert_eq!(ex.stats().l2_misses, 2);
    }

    #[test]
    fn accounting_balances() {
        let mut s = ExclusiveTwoLevel::new(
            CacheConfig::paper(512, Associativity::Direct).unwrap(),
            CacheConfig::paper(4096, Associativity::SetAssoc(4)).unwrap(),
        );
        for i in 0..30_000u64 {
            s.access(MemRef::load(Addr::new((i * 52) % 32768)));
        }
        let st = s.stats();
        assert_eq!(st.data_refs, 30_000);
        assert_eq!(st.l1_misses(), st.l2_hits + st.l2_misses);
    }

    #[test]
    fn dirty_data_survives_the_swap_path() {
        // Store to A; ping-pong A and E (both-level conflict); A's dirty
        // bit must follow it through L1→L2→L1 moves, and eventually count
        // a writeback when evicted off-chip.
        let mut s = fig21();
        let a = Addr::new(0x000);
        let e = Addr::new(0x100);
        s.access(MemRef::store(a));
        s.access(MemRef::load(e)); // dirty A → L2
        s.access(MemRef::load(a)); // A back to L1 (still dirty), E → L2
        s.access(MemRef::load(e)); // dirty A → L2 again
                                   // Push A out of L2 via a third conflicting line coming from L1.
        let c = Addr::new(0x200);
        s.access(MemRef::load(c)); // off-chip → L1, victim E→L2 (same set, evicts... )
                                   // Keep forcing until A's dirty copy is evicted off-chip.
        for i in 3..8u64 {
            s.access(MemRef::load(Addr::new(i * 0x100)));
        }
        assert!(s.stats().offchip_writebacks >= 1, "dirty line vanished without writeback");
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn rejects_mismatched_line_sizes() {
        let l1 =
            CacheConfig::new(64, 16, Associativity::Direct, crate::config::ReplacementKind::Lru)
                .unwrap();
        let l2 =
            CacheConfig::new(512, 32, Associativity::Direct, crate::config::ReplacementKind::Lru)
                .unwrap();
        let _ = ExclusiveTwoLevel::new(l1, l2);
    }

    #[test]
    fn describe_mentions_exclusive() {
        assert!(fig21().describe().contains("exclusive"));
    }
}
