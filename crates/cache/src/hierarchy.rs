//! The [`MemorySystem`] abstraction shared by every cache organisation.

use crate::stats::HierarchyStats;
use tlc_trace::{InstructionRecord, LineAddr, MemRef};

/// Which level of the memory system satisfied a reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Hit in the first-level cache.
    L1,
    /// Satisfied by the on-chip second level (or victim buffer).
    L2,
    /// Went off-chip.
    Memory,
}

/// Outcome of one instruction's references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstructionOutcome {
    /// Where the instruction fetch was satisfied.
    pub fetch: ServiceLevel,
    /// Where the data reference was satisfied, if one was issued.
    pub data: Option<ServiceLevel>,
}

/// A complete simulated memory system (split L1 plus whatever lies
/// behind it).
///
/// All organisations in this crate implement the trait, so experiments
/// can be written once against `dyn MemorySystem`.
pub trait MemorySystem {
    /// Processes a single reference, updating statistics.
    fn access(&mut self, r: MemRef) -> ServiceLevel;

    /// Accumulated statistics.
    fn stats(&self) -> &HierarchyStats;

    /// Clears statistics without flushing cache contents (used to discard
    /// warm-up transients).
    fn reset_stats(&mut self);

    /// A short human-readable description of the organisation.
    fn describe(&self) -> String;

    /// Processes one instruction (fetch plus optional data reference).
    fn access_instruction(&mut self, rec: &InstructionRecord) -> InstructionOutcome {
        let fetch = self.access(MemRef::fetch(rec.fetch));
        let data = rec.data.map(|d| self.access(d));
        InstructionOutcome { fetch, data }
    }

    /// Purges `line` from every cache of this system, returning how many
    /// copies were dropped. Used to maintain inclusion with an external
    /// (board-level) cache when it evicts a line — the paper's §8
    /// multiprocessor remark ("eliminating on-chip cache lines which are
    /// not present off-chip"). Dirty data is discarded; the external
    /// cache already holds the line's last written-back state in this
    /// write-back-on-eviction model.
    fn invalidate_line(&mut self, line: LineAddr) -> u32 {
        let _ = line;
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlc_trace::Addr;

    /// A trivial system that always misses, for testing the default
    /// method.
    struct AlwaysMiss {
        stats: HierarchyStats,
    }

    impl MemorySystem for AlwaysMiss {
        fn access(&mut self, r: MemRef) -> ServiceLevel {
            if r.kind.is_data() {
                self.stats.data_refs += 1;
                self.stats.l1d_misses += 1;
            } else {
                self.stats.instructions += 1;
                self.stats.l1i_misses += 1;
            }
            self.stats.l2_misses += 1;
            ServiceLevel::Memory
        }

        fn stats(&self) -> &HierarchyStats {
            &self.stats
        }

        fn reset_stats(&mut self) {
            self.stats = HierarchyStats::default();
        }

        fn describe(&self) -> String {
            "always-miss".into()
        }
    }

    #[test]
    fn default_instruction_access_covers_both_refs() {
        let mut m = AlwaysMiss { stats: HierarchyStats::default() };
        let rec = InstructionRecord::with_data(Addr::new(0x100), MemRef::load(Addr::new(0x2000)));
        let out = m.access_instruction(&rec);
        assert_eq!(out.fetch, ServiceLevel::Memory);
        assert_eq!(out.data, Some(ServiceLevel::Memory));
        assert_eq!(m.stats().instructions, 1);
        assert_eq!(m.stats().data_refs, 1);

        let out = m.access_instruction(&InstructionRecord::fetch_only(Addr::new(0x104)));
        assert_eq!(out.data, None);
        assert_eq!(m.stats().instructions, 2);
    }
}
