//! Stream buffers — the prefetch half of the paper's reference [4]
//! (Jouppi, *Improving Direct-Mapped Cache Performance by the Addition
//! of a Small Fully-Associative Cache and Prefetch Buffers*, ISCA 1990).
//!
//! A stream buffer is a FIFO of sequentially-prefetched lines sitting
//! beside a direct-mapped L1. On an L1 miss whose line is at the *head*
//! of a buffer, the line moves into the L1 and the buffer prefetches the
//! next sequential line into its tail. A miss that hits no buffer
//! allocates one (LRU), which starts prefetching from the missing line's
//! successor. Sequential streams — tomcatv's sweeps, fpppp's straight-
//! line code — then hit in the buffers instead of going to memory.
//!
//! Timing/bandwidth accounting: buffer hits are counted as `l2_hits`
//! (a one-to-few cycle transfer, like an on-chip L2 hit); lines
//! prefetched from memory are tracked in
//! [`StreamBufferSystem::prefetches`] so bandwidth cost is visible.

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::hierarchy::{MemorySystem, ServiceLevel};
use crate::stats::HierarchyStats;
use std::collections::VecDeque;
use tlc_trace::{AccessKind, LineAddr, MemRef};

/// One stream buffer: a FIFO of prefetched line addresses.
#[derive(Debug, Clone)]
struct StreamBuffer {
    /// Prefetched lines, head first.
    lines: VecDeque<LineAddr>,
    /// Next line the buffer would prefetch.
    next: LineAddr,
    /// LRU stamp for allocation.
    last_use: u64,
}

impl StreamBuffer {
    fn restart(&mut self, after: LineAddr, depth: usize, stamp: u64, prefetches: &mut u64) {
        self.lines.clear();
        self.next = LineAddr(after.0 + 1);
        for _ in 0..depth {
            self.lines.push_back(self.next);
            self.next = LineAddr(self.next.0 + 1);
            *prefetches += 1;
        }
        self.last_use = stamp;
    }
}

/// A pool of stream buffers serving one L1 cache side.
#[derive(Debug)]
struct BufferPool {
    buffers: Vec<StreamBuffer>,
    depth: usize,
    clock: u64,
}

impl BufferPool {
    fn new(count: usize, depth: usize) -> Self {
        BufferPool {
            buffers: (0..count)
                .map(|_| StreamBuffer {
                    lines: VecDeque::with_capacity(depth),
                    next: LineAddr(0),
                    last_use: 0,
                })
                .collect(),
            depth,
            clock: 0,
        }
    }

    /// Looks for `line` at the head of any buffer. On a hit the buffer
    /// advances (prefetching one more line). Returns whether it hit.
    fn lookup(&mut self, line: LineAddr, prefetches: &mut u64) -> bool {
        self.clock += 1;
        for b in &mut self.buffers {
            if b.lines.front() == Some(&line) {
                b.lines.pop_front();
                b.lines.push_back(b.next);
                b.next = LineAddr(b.next.0 + 1);
                *prefetches += 1;
                b.last_use = self.clock;
                return true;
            }
        }
        false
    }

    /// Allocates the LRU buffer to stream from `miss_line + 1`.
    fn allocate(&mut self, miss_line: LineAddr, prefetches: &mut u64) {
        self.clock += 1;
        let stamp = self.clock;
        let depth = self.depth;
        let lru = self.buffers.iter_mut().min_by_key(|b| b.last_use).expect("at least one buffer");
        lru.restart(miss_line, depth, stamp, prefetches);
    }
}

/// Split direct-mapped L1 caches, each backed by a pool of stream
/// buffers. See the module docs.
///
/// # Examples
///
/// ```
/// use tlc_cache::{Associativity, CacheConfig, MemorySystem, ServiceLevel, StreamBufferSystem};
/// use tlc_trace::{Addr, MemRef};
///
/// # fn main() -> Result<(), tlc_cache::ConfigError> {
/// let l1 = CacheConfig::paper(1024, Associativity::Direct)?;
/// let mut sys = StreamBufferSystem::new(l1, 2, 4);
/// // A cold sequential sweep: first line misses, the rest hit the buffer.
/// sys.access(MemRef::load(Addr::new(0x10000)));                  // memory
/// assert_eq!(sys.access(MemRef::load(Addr::new(0x10010))), ServiceLevel::L2);
/// assert_eq!(sys.access(MemRef::load(Addr::new(0x10020))), ServiceLevel::L2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamBufferSystem {
    l1i: Cache,
    l1d: Cache,
    i_pool: BufferPool,
    d_pool: BufferPool,
    line_bytes: u64,
    stats: HierarchyStats,
    prefetches: u64,
}

impl StreamBufferSystem {
    /// Builds the system with `buffers` stream buffers of `depth` lines
    /// on each L1 side.
    ///
    /// # Panics
    ///
    /// Panics if `buffers` or `depth` is zero.
    pub fn new(l1_cfg: CacheConfig, buffers: usize, depth: usize) -> Self {
        assert!(buffers > 0, "need at least one stream buffer");
        assert!(depth > 0, "buffers need at least one entry");
        StreamBufferSystem {
            l1i: Cache::new(l1_cfg),
            l1d: Cache::new(l1_cfg),
            i_pool: BufferPool::new(buffers, depth),
            d_pool: BufferPool::new(buffers, depth),
            line_bytes: l1_cfg.line_bytes(),
            stats: HierarchyStats::default(),
            prefetches: 0,
        }
    }

    /// The instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// Lines prefetched from memory (bandwidth cost of the buffers).
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }
}

impl MemorySystem for StreamBufferSystem {
    fn access(&mut self, r: MemRef) -> ServiceLevel {
        let line = r.addr.line(self.line_bytes);
        let is_write = r.kind == AccessKind::Store;
        let is_instr = r.kind == AccessKind::InstrFetch;
        {
            let (l1, miss_ctr) = if is_instr {
                self.stats.instructions += 1;
                (&mut self.l1i, &mut self.stats.l1i_misses)
            } else {
                self.stats.data_refs += 1;
                (&mut self.l1d, &mut self.stats.l1d_misses)
            };
            if l1.access(line, is_write) {
                return ServiceLevel::L1;
            }
            *miss_ctr += 1;
        }
        let (l1, pool) = if is_instr {
            (&mut self.l1i, &mut self.i_pool)
        } else {
            (&mut self.l1d, &mut self.d_pool)
        };
        let hit = pool.lookup(line, &mut self.prefetches);
        if !hit {
            pool.allocate(line, &mut self.prefetches);
        }
        if let Some(v) = l1.fill(line, is_write) {
            if v.dirty {
                self.stats.offchip_writebacks += 1;
            }
        }
        if hit {
            self.stats.l2_hits += 1;
            ServiceLevel::L2
        } else {
            self.stats.l2_misses += 1;
            ServiceLevel::Memory
        }
    }

    fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.prefetches = 0;
        self.l1i.reset_stats();
        self.l1d.reset_stats();
    }

    fn invalidate_line(&mut self, line: LineAddr) -> u32 {
        self.l1i.invalidate(line) as u32 + self.l1d.invalidate(line) as u32
    }

    fn describe(&self) -> String {
        format!(
            "stream-buffer: split L1 {} + {}x{}-line buffers per side",
            self.l1i.config(),
            self.i_pool.buffers.len(),
            self.i_pool.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Associativity;
    use crate::single::SingleLevel;
    use tlc_trace::Addr;

    fn sys(buffers: usize, depth: usize) -> StreamBufferSystem {
        StreamBufferSystem::new(
            CacheConfig::paper(1024, Associativity::Direct).expect("valid"),
            buffers,
            depth,
        )
    }

    #[test]
    fn sequential_sweep_hits_after_first_miss() {
        let mut s = sys(2, 4);
        // Sweep 64 sequential lines far beyond the 1KB L1.
        let mut memory = 0;
        let mut buffer = 0;
        for i in 0..64u64 {
            match s.access(MemRef::load(Addr::new(0x10_0000 + i * 16))) {
                ServiceLevel::Memory => memory += 1,
                ServiceLevel::L2 => buffer += 1,
                ServiceLevel::L1 => {}
            }
        }
        assert_eq!(memory, 1, "only the stream head should miss to memory");
        assert_eq!(buffer, 63);
    }

    #[test]
    fn two_interleaved_streams_need_two_buffers() {
        let run = |buffers: usize| {
            let mut s = sys(buffers, 4);
            let mut mem = 0;
            for i in 0..64u64 {
                for base in [0x10_0000u64, 0x40_0000] {
                    if s.access(MemRef::load(Addr::new(base + i * 16))) == ServiceLevel::Memory {
                        mem += 1;
                    }
                }
            }
            mem
        };
        let one = run(1);
        let two = run(2);
        assert_eq!(two, 2, "two buffers follow both streams");
        assert!(one > 32, "one buffer thrashes between interleaved streams: {one}");
    }

    #[test]
    fn non_sequential_traffic_gains_nothing() {
        let mut s = sys(4, 4);
        let mut x = 7u64;
        let mut buffer_hits = 0;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if s.access(MemRef::load(Addr::new((x % (1 << 22)) & !0xF))) == ServiceLevel::L2 {
                buffer_hits += 1;
            }
        }
        assert!(
            (buffer_hits as f64) < 25.0,
            "random traffic should rarely hit stream buffers: {buffer_hits}"
        );
    }

    #[test]
    fn prefetch_bandwidth_is_accounted() {
        let mut s = sys(2, 4);
        for i in 0..16u64 {
            s.access(MemRef::load(Addr::new(0x10_0000 + i * 16)));
        }
        // Allocation prefetches `depth` lines; each buffer hit prefetches
        // one more.
        assert!(s.prefetches() >= 16, "prefetch traffic too low: {}", s.prefetches());
    }

    #[test]
    fn beats_plain_single_level_on_streams() {
        let l1 = CacheConfig::paper(1024, Associativity::Direct).expect("valid");
        // tomcatv round-robins seven arrays, so give the data side enough
        // buffers to follow every stream.
        let mut plain = SingleLevel::new(l1);
        let mut buffered = StreamBufferSystem::new(l1, 8, 4);
        let mut w = tlc_trace::spec::SpecBenchmark::Tomcatv.workload();
        for _ in 0..60_000 {
            let rec = w.next_instruction();
            plain.access_instruction(&rec);
            buffered.access_instruction(&rec);
        }
        assert!(
            (buffered.stats().l2_misses as f64) < 0.6 * plain.stats().l2_misses as f64,
            "stream buffers should remove >40% of tomcatv's misses: {} vs {}",
            buffered.stats().l2_misses,
            plain.stats().l2_misses
        );
    }

    #[test]
    fn instruction_side_has_its_own_buffers() {
        let mut s = sys(1, 4);
        // Interleave an instruction stream and a data stream: each side's
        // single buffer follows its own stream without interference.
        let mut mem = 0;
        for i in 0..32u64 {
            if s.access(MemRef::fetch(Addr::new(0x10_0000 + i * 16))) == ServiceLevel::Memory {
                mem += 1;
            }
            if s.access(MemRef::load(Addr::new(0x80_0000 + i * 16))) == ServiceLevel::Memory {
                mem += 1;
            }
        }
        assert_eq!(mem, 2, "one cold miss per side only");
    }

    #[test]
    fn accounting_balances() {
        let mut s = sys(2, 4);
        for i in 0..5000u64 {
            s.access(MemRef::load(Addr::new((i * 52) % 65536)));
        }
        let st = s.stats();
        assert_eq!(st.l1_misses(), st.l2_hits + st.l2_misses);
    }

    #[test]
    #[should_panic(expected = "at least one stream buffer")]
    fn rejects_zero_buffers() {
        let _ = sys(0, 4);
    }

    #[test]
    fn describe_mentions_buffers() {
        assert!(sys(2, 4).describe().contains("stream-buffer"));
    }
}
