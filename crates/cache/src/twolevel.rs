//! Conventional (non-exclusive) two-level organisation — the baseline of
//! the paper's §4.
//!
//! Split direct-mapped L1 caches back a unified L2. Demand misses fill
//! *both* levels, so lines are duplicated between L1 and L2 ("much of the
//! second-level cache will consist of instructions and data which are
//! already in the primary caches", §1). Replacement in the L2 does not
//! back-invalidate L1 (the paper's standard scheme is demand-inclusive,
//! not enforced-inclusive); a dirty L1 victim updates its L2 copy when one
//! exists and otherwise goes off-chip.

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::hierarchy::{MemorySystem, ServiceLevel};
use crate::stats::HierarchyStats;
use tlc_trace::{AccessKind, MemRef};

/// Split L1 I/D caches over a unified L2, conventional fill policy.
///
/// # Examples
///
/// ```
/// use tlc_cache::{Associativity, CacheConfig, ConventionalTwoLevel, MemorySystem};
/// use tlc_trace::{Addr, MemRef};
///
/// # fn main() -> Result<(), tlc_cache::ConfigError> {
/// let l1 = CacheConfig::paper(1024, Associativity::Direct)?;
/// let l2 = CacheConfig::paper(8 * 1024, Associativity::SetAssoc(4))?;
/// let mut sys = ConventionalTwoLevel::new(l1, l2);
/// sys.access(MemRef::load(Addr::new(0x9000)));   // off-chip, fills L2+L1
/// assert_eq!(sys.stats().l2_misses, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ConventionalTwoLevel {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    line_bytes: u64,
    stats: HierarchyStats,
    /// Line of the most recent instruction fetch (`u64::MAX` when unknown
    /// or the filter is disabled). The last fetched line is resident by
    /// construction — a hit left it in place, a miss filled it — so a
    /// repeat fetch is a guaranteed L1 hit, resolved without probing the
    /// array. Only maintained for a direct-mapped L1I, where a repeat hit
    /// has no replacement side effects to reproduce.
    last_fetch: u64,
}

impl ConventionalTwoLevel {
    /// Builds the hierarchy. Both L1 caches use `l1_cfg`; the unified L2
    /// uses `l2_cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the two configurations disagree on line size (the paper
    /// uses 16-byte lines at both levels; refills assume equal lines).
    pub fn new(l1_cfg: CacheConfig, l2_cfg: CacheConfig) -> Self {
        assert_eq!(l1_cfg.line_bytes(), l2_cfg.line_bytes(), "L1 and L2 must share a line size");
        ConventionalTwoLevel {
            l1i: Cache::new(l1_cfg),
            l1d: Cache::new(l1_cfg),
            l2: Cache::new(l2_cfg),
            line_bytes: l1_cfg.line_bytes(),
            stats: HierarchyStats::default(),
            last_fetch: u64::MAX,
        }
    }

    /// The instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The unified second-level cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Writes an L1 victim back: updates the L2 copy when present,
    /// otherwise counts an off-chip writeback (dirty victims only).
    fn retire_l1_victim(&mut self, victim: crate::cache::Evicted) {
        if !victim.dirty {
            return;
        }
        // Merge dirty into the existing L2 copy in one scan.
        if !self.l2.merge_if_present(victim.line, true) {
            self.stats.offchip_writebacks += 1;
        }
    }
}

impl MemorySystem for ConventionalTwoLevel {
    #[inline]
    fn access(&mut self, r: MemRef) -> ServiceLevel {
        let line = r.addr.line(self.line_bytes);
        let is_write = r.kind == AccessKind::Store;
        let is_fetch = r.kind == AccessKind::InstrFetch;
        if is_fetch {
            self.stats.instructions += 1;
            if line.0 == self.last_fetch {
                self.l1i.note_filtered_hit();
                return ServiceLevel::L1;
            }
            if self.l1i.is_direct_mapped() {
                self.last_fetch = line.0;
            }
            if self.l1i.access(line, false) {
                return ServiceLevel::L1;
            }
            self.stats.l1i_misses += 1;
        } else {
            self.stats.data_refs += 1;
            if self.l1d.access(line, is_write) {
                return ServiceLevel::L1;
            }
            self.stats.l1d_misses += 1;
        }

        let level = if self.l2.access(line, false) {
            // L2 hit: refill L1 from L2.
            self.stats.l2_hits += 1;
            ServiceLevel::L2
        } else {
            // L2 miss: fetch off-chip, fill both levels.
            self.stats.l2_misses += 1;
            if let Some(v2) = self.l2.fill_after_miss(line, false) {
                if v2.dirty {
                    self.stats.offchip_writebacks += 1;
                }
            }
            ServiceLevel::Memory
        };
        let l1 = if is_fetch { &mut self.l1i } else { &mut self.l1d };
        if let Some(v) = l1.fill_after_miss(line, is_write) {
            self.retire_l1_victim(v);
        }
        level
    }

    fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
    }

    fn invalidate_line(&mut self, line: tlc_trace::LineAddr) -> u32 {
        self.last_fetch = u64::MAX; // the filtered line may be the target
        let mut purged = 0;
        purged += self.l1i.invalidate(line) as u32;
        purged += self.l1d.invalidate(line) as u32;
        purged += self.l2.invalidate(line) as u32;
        purged
    }

    fn describe(&self) -> String {
        format!(
            "conventional two-level: split L1 {} / unified L2 {}",
            self.l1i.config(),
            self.l2.config()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Associativity;
    use tlc_trace::Addr;

    fn sys(l1_bytes: u64, l2_bytes: u64, l2_assoc: Associativity) -> ConventionalTwoLevel {
        ConventionalTwoLevel::new(
            CacheConfig::paper(l1_bytes, Associativity::Direct).unwrap(),
            CacheConfig::paper(l2_bytes, l2_assoc).unwrap(),
        )
    }

    #[test]
    fn miss_fills_both_levels() {
        let mut s = sys(1024, 8192, Associativity::SetAssoc(4));
        let a = Addr::new(0x5000);
        assert_eq!(s.access(MemRef::load(a)), ServiceLevel::Memory);
        assert!(s.l1d().contains(a.line(16)), "L1 not filled");
        assert!(s.l2().contains(a.line(16)), "L2 not filled");
    }

    #[test]
    fn l1_conflict_served_by_l2() {
        let mut s = sys(1024, 8192, Associativity::SetAssoc(4));
        let a = Addr::new(0x0000);
        let b = Addr::new(1024); // conflicts with a in the 1KB L1
        s.access(MemRef::load(a)); // memory
        s.access(MemRef::load(b)); // memory, evicts a from L1
        assert_eq!(s.access(MemRef::load(a)), ServiceLevel::L2, "conflict not caught by L2");
        assert_eq!(s.stats().l2_hits, 1);
        assert_eq!(s.stats().l2_misses, 2);
    }

    #[test]
    fn duplication_between_levels_is_high() {
        // After a working-set walk, nearly every L1 line should also be in
        // the L2 — the inclusion-by-demand behaviour §1 warns about.
        let mut s = sys(1024, 4096, Associativity::SetAssoc(4));
        for i in 0..4096u64 {
            s.access(MemRef::load(Addr::new((i * 16) % 4096)));
        }
        let dup = s.l1d().iter_lines().filter(|l| s.l2().contains(*l)).count();
        let resident = s.l1d().resident_lines() as usize;
        assert!(resident > 0);
        assert!(
            dup as f64 / resident as f64 > 0.9,
            "expected heavy duplication, got {dup}/{resident}"
        );
    }

    #[test]
    fn dirty_victim_updates_l2_not_offchip() {
        let mut s = sys(1024, 8192, Associativity::SetAssoc(4));
        let a = Addr::new(0x0000);
        let b = Addr::new(0x400); // same L1 set (1KB L1)... 0x400 = 1024 → conflicts
        s.access(MemRef::store(a)); // a dirty in L1, also in L2
        s.access(MemRef::load(b)); // evicts dirty a; L2 has a ⇒ updated there
        assert_eq!(s.stats().offchip_writebacks, 0);
        assert_eq!(s.access(MemRef::load(a)), ServiceLevel::L2);
    }

    #[test]
    fn l2_eviction_of_dirty_line_goes_offchip() {
        // Tiny L2 (direct-mapped, same size as L1 data cache) so L2
        // conflict evictions happen; make the victim dirty first.
        let mut s = sys(1024, 2048, Associativity::Direct);
        let a = Addr::new(0x0000);
        s.access(MemRef::store(a)); // a in L1(dirty) and L2
                                    // Evict a from L1 by a conflicting line; dirty a updates L2 copy.
        s.access(MemRef::load(Addr::new(1024)));
        // Now push a's dirty L2 copy out with an L2-conflicting line.
        s.access(MemRef::load(Addr::new(2048)));
        assert_eq!(s.stats().offchip_writebacks, 1);
    }

    #[test]
    fn accounting_balances() {
        let mut s = sys(1024, 8192, Associativity::SetAssoc(4));
        for i in 0..20_000u64 {
            s.access(MemRef::load(Addr::new((i * 52) % 16384)));
        }
        let st = s.stats();
        assert_eq!(st.data_refs, 20_000);
        assert_eq!(st.l1_misses(), st.l2_hits + st.l2_misses);
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn rejects_mismatched_line_sizes() {
        let l1 =
            CacheConfig::new(1024, 16, Associativity::Direct, crate::config::ReplacementKind::Lru)
                .unwrap();
        let l2 =
            CacheConfig::new(8192, 32, Associativity::Direct, crate::config::ReplacementKind::Lru)
                .unwrap();
        let _ = ConventionalTwoLevel::new(l1, l2);
    }

    #[test]
    fn describe_mentions_levels() {
        let s = sys(1024, 8192, Associativity::SetAssoc(4));
        let d = s.describe();
        assert!(d.contains("L1") && d.contains("L2"));
    }
}
