//! The access- and cycle-time model and its organisation search.
//!
//! For a given [`CacheGeometry`] and [`ArrayOrg`], the model computes the
//! delays of the decoder, wordline, bitline, sense amplifier, tag
//! comparator, output-mux driver and output driver, composes them into the
//! data-side and tag-side critical paths, and reports:
//!
//! * **access time** — start of access to data valid (§2.3);
//! * **cycle time** — minimum time between the starts of two accesses
//!   (access + bitline precharge/recovery).
//!
//! [`TimingModel::optimal`] iterates "through the delay expressions for a
//! range of memory array organizations … the minimum access and cycle
//! times for each cache size were chosen" (§2.3), exactly as the paper
//! does; the winning [`ArrayOrg`] is returned so the area model can price
//! the very same layout.

use crate::tech::TechParams;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use tlc_area::{ArrayOrg, CacheGeometry, CellKind};

/// Itemised stage delays (ns, after technology scaling).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingBreakdown {
    /// Data-side decoder + routing.
    pub data_decode: f64,
    /// Data wordline delay.
    pub data_wordline: f64,
    /// Data bitline delay.
    pub data_bitline: f64,
    /// Tag-side decoder + routing.
    pub tag_decode: f64,
    /// Tag wordline delay.
    pub tag_wordline: f64,
    /// Tag bitline delay.
    pub tag_bitline: f64,
    /// Sense-amplifier delay (applies to both sides).
    pub sense: f64,
    /// Tag comparator delay.
    pub compare: f64,
    /// Output-mux driver delay (zero for direct-mapped reads).
    pub mux: f64,
    /// Output driver delay.
    pub output: f64,
    /// Precharge/recovery time added to the cycle.
    pub precharge: f64,
}

impl TimingBreakdown {
    /// Delay of the data side up to the sense-amp output.
    pub fn data_path(&self) -> f64 {
        self.data_decode + self.data_wordline + self.data_bitline + self.sense
    }

    /// Delay of the tag side through the comparator.
    pub fn tag_path(&self) -> f64 {
        self.tag_decode + self.tag_wordline + self.tag_bitline + self.sense + self.compare
    }

    /// Access time: both paths must resolve, then (in a set-associative
    /// cache) the comparator-driven way-select mux fires, and finally the
    /// output driver. The serial mux stage is why "the tag must be read
    /// and compared in order to select the proper item from the data
    /// array" makes set-associative caches slower (§4).
    pub fn access_ns(&self) -> f64 {
        self.data_path().max(self.tag_path()) + self.mux + self.output
    }

    /// Cycle time: access plus bitline recovery.
    pub fn cycle_ns(&self) -> f64 {
        self.access_ns() + self.precharge
    }
}

/// Result of timing one cache: the best organisation found and its times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheTiming {
    /// Access time in ns.
    pub access_ns: f64,
    /// Cycle time in ns.
    pub cycle_ns: f64,
    /// The organisation achieving these times.
    pub org: ArrayOrg,
    /// The itemised stage delays.
    pub breakdown: TimingBreakdown,
}

impl fmt::Display for CacheTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "access {:.2}ns / cycle {:.2}ns ({})", self.access_ns, self.cycle_ns, self.org)
    }
}

/// The access/cycle-time model. See the module docs.
///
/// # Examples
///
/// ```
/// use tlc_area::{CacheGeometry, CellKind};
/// use tlc_timing::TimingModel;
///
/// let model = TimingModel::paper();
/// let small = model.optimal(&CacheGeometry::paper(1024, 1), CellKind::SinglePorted);
/// let large = model.optimal(&CacheGeometry::paper(256 * 1024, 1), CellKind::SinglePorted);
/// assert!(large.cycle_ns > small.cycle_ns);
/// assert!(small.cycle_ns > small.access_ns);
/// ```
#[derive(Debug, Default)]
pub struct TimingModel {
    tech: TechParams,
    /// Memoised results of [`TimingModel::optimal`]. The organisation
    /// search walks thousands of candidate layouts per call, yet a
    /// design-space sweep asks about the same handful of geometries over
    /// and over (every configuration sharing an L1 size shares its L1
    /// timing). The entries are pure functions of `(geometry, cell)` and
    /// the immutable `tech`, so caching is observationally transparent.
    memo: Mutex<HashMap<OptimalKey, CacheTiming>>,
}

/// Memo key for [`TimingModel::optimal`]: the geometry fields plus the
/// cell kind, all plain integers.
type OptimalKey = (u64, u64, u32, u32, bool);

impl Clone for TimingModel {
    fn clone(&self) -> Self {
        // The memo holds derived data only; a clone starts cold rather
        // than copying (and thereby locking) the source's cache.
        TimingModel { tech: self.tech, memo: Mutex::default() }
    }
}

impl TimingModel {
    /// Model at the paper's operating point (0.5µm scaling).
    pub fn paper() -> Self {
        TimingModel::with_tech(TechParams::paper_0_5um())
    }

    /// Model with explicit technology parameters.
    pub fn with_tech(tech: TechParams) -> Self {
        TimingModel { tech, memo: Mutex::default() }
    }

    /// The technology parameters in use.
    pub fn tech(&self) -> &TechParams {
        &self.tech
    }

    /// Stage delays for `geom` laid out as `org` with `cell` RAM cells.
    ///
    /// # Panics
    ///
    /// Panics if `org` is not valid for `geom`.
    pub fn analyze(&self, geom: &CacheGeometry, org: &ArrayOrg, cell: CellKind) -> TimingBreakdown {
        assert!(org.is_valid_for(geom), "organisation {org} invalid for {geom}");
        let t = &self.tech;
        // A dual-ported cell is √2 longer per side: wordlines and bitlines
        // crossing it carry √2 the resistance *and* √2 the capacitance,
        // so the distributed-RC terms grow by the squared wire factor.
        let wf2 = cell.wire_factor() * cell.wire_factor();

        let d_rows = org.data_rows(geom);
        let d_cols = org.data_cols(geom);
        let t_rows = org.tag_rows(geom);
        let t_cols = org.tag_cols(geom);

        let decode = |rows: f64, subarrays: f64| {
            t.decoder_base
                + t.decoder_per_log_row * rows.max(1.0).log2()
                + t.route_per_sqrt_subarray * subarrays.sqrt()
        };

        let raw = TimingBreakdown {
            data_decode: decode(d_rows, org.data_subarrays() as f64),
            data_wordline: t.wordline_rc * (d_cols * d_cols) * wf2,
            data_bitline: t.bitline_rc * (d_rows * d_rows) * wf2,
            tag_decode: decode(t_rows, org.tag_subarrays() as f64),
            tag_wordline: t.wordline_rc * (t_cols * t_cols) * wf2,
            tag_bitline: t.bitline_rc * (t_rows * t_rows) * wf2,
            sense: t.sense_amp,
            compare: t.comparator_base + t.comparator_per_bit * geom.tag_bits() as f64,
            mux: if geom.ways > 1 { t.mux_driver } else { 0.0 },
            output: t.output_driver,
            precharge: t.precharge_base
                + t.precharge_bitline_factor * (t.bitline_rc * (d_rows * d_rows) * wf2),
        };
        // Apply the linear technology scale to every stage.
        let s = t.scale;
        TimingBreakdown {
            data_decode: raw.data_decode * s,
            data_wordline: raw.data_wordline * s,
            data_bitline: raw.data_bitline * s,
            tag_decode: raw.tag_decode * s,
            tag_wordline: raw.tag_wordline * s,
            tag_bitline: raw.tag_bitline * s,
            sense: raw.sense * s,
            compare: raw.compare * s,
            mux: raw.mux * s,
            output: raw.output * s,
            precharge: raw.precharge * s,
        }
    }

    /// Enumerates candidate organisations for `geom`.
    fn candidate_orgs(geom: &CacheGeometry) -> Vec<ArrayOrg> {
        candidate_orgs(geom)
    }
}

/// Candidate array organisations shared by the calibrated and detailed
/// models' searches.
pub(crate) fn candidate_orgs(geom: &CacheGeometry) -> Vec<ArrayOrg> {
    let pows = [1u32, 2, 4, 8, 16, 32];
    let spds = [1u32, 2, 4, 8];
    let mut out = Vec::new();
    for &ndwl in &pows {
        for &ndbl in &pows {
            for &nspd in &spds {
                for &ntwl in &[1u32, 2, 4] {
                    for &ntbl in &pows {
                        for &ntspd in &[1u32, 2, 4] {
                            let org = ArrayOrg { ndwl, ndbl, nspd, ntwl, ntbl, ntspd };
                            if org.is_valid_for(geom) {
                                out.push(org);
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

impl TimingModel {
    /// Finds the organisation with the minimum cycle time (ties broken by
    /// access time), as the paper's §2.3 search does.
    ///
    /// Results are memoised per model instance: the search is a pure
    /// function of the geometry, the cell kind and the (immutable)
    /// technology parameters, and sweeps request the same geometries for
    /// every configuration that shares a cache size.
    pub fn optimal(&self, geom: &CacheGeometry, cell: CellKind) -> CacheTiming {
        let key: OptimalKey = (
            geom.size_bytes,
            geom.line_bytes,
            geom.ways,
            geom.addr_bits,
            matches!(cell, CellKind::DualPorted),
        );
        // A poisoned lock only means another thread panicked mid-insert;
        // the map itself is still a valid memo, so keep using it.
        if let Some(hit) = self.memo.lock().unwrap_or_else(|p| p.into_inner()).get(&key) {
            return *hit;
        }
        // Search without holding the lock: sweep threads asking about
        // distinct geometries should not serialise on each other. Two
        // threads racing on the same key both compute the same value, so
        // the duplicate insert is harmless.
        let best = self.search_optimal(geom, cell);
        self.memo.lock().unwrap_or_else(|p| p.into_inner()).insert(key, best);
        best
    }

    /// The uncached §2.3 organisation search behind [`TimingModel::optimal`].
    fn search_optimal(&self, geom: &CacheGeometry, cell: CellKind) -> CacheTiming {
        let mut best: Option<CacheTiming> = None;
        for org in Self::candidate_orgs(geom) {
            let b = self.analyze(geom, &org, cell);
            let cand =
                CacheTiming { access_ns: b.access_ns(), cycle_ns: b.cycle_ns(), org, breakdown: b };
            // Near-ties in cycle time (within 5 ps) are broken toward the
            // organisation with fewer subarrays — the machine cycle is
            // quantised far more coarsely than that, and the paper's area
            // model charges real silicon for every extra subarray.
            let subarrays = |t: &CacheTiming| t.org.data_subarrays() + t.org.tag_subarrays();
            let better = match &best {
                None => true,
                Some(cur) => {
                    cand.cycle_ns < cur.cycle_ns - 5e-3
                        || ((cand.cycle_ns - cur.cycle_ns).abs() <= 5e-3
                            && (subarrays(&cand) < subarrays(cur)
                                || (subarrays(&cand) == subarrays(cur)
                                    && cand.access_ns < cur.access_ns)))
                }
            };
            if better {
                best = Some(cand);
            }
        }
        best.expect("at least the unit organisation is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TimingModel {
        TimingModel::paper()
    }

    fn dm(kb: u64) -> CacheGeometry {
        CacheGeometry::paper(kb * 1024, 1)
    }

    #[test]
    fn cycle_exceeds_access() {
        let m = model();
        for kb in [1u64, 4, 16, 64, 256] {
            let t = m.optimal(&dm(kb), CellKind::SinglePorted);
            assert!(t.cycle_ns > t.access_ns, "{kb}KB: cycle must exceed access");
        }
    }

    #[test]
    fn times_grow_with_size() {
        let m = model();
        let mut last = 0.0;
        for kb in [1u64, 2, 4, 8, 16, 32, 64, 128, 256] {
            let t = m.optimal(&dm(kb), CellKind::SinglePorted);
            assert!(
                t.cycle_ns >= last - 1e-9,
                "{kb}KB cycle {} not monotone (prev {last})",
                t.cycle_ns
            );
            last = t.cycle_ns;
        }
    }

    #[test]
    fn paper_anchor_spread_about_1_8x() {
        // §2.1: "a variation in machine cycle time of about 1.8X from
        // processors with 1KB caches through 256KB caches."
        let m = model();
        let small = m.optimal(&dm(1), CellKind::SinglePorted).cycle_ns;
        let large = m.optimal(&dm(256), CellKind::SinglePorted).cycle_ns;
        let ratio = large / small;
        assert!(
            (1.5..=2.2).contains(&ratio),
            "cycle spread 1KB→256KB should be ≈1.8×, got {ratio:.2} ({small:.2} → {large:.2})"
        );
    }

    #[test]
    fn paper_anchor_absolute_band() {
        // Figure 1's axis: everything between ~2 and ~6 ns at 0.5µm.
        let m = model();
        for kb in [1u64, 4, 16, 64, 256] {
            let t = m.optimal(&dm(kb), CellKind::SinglePorted);
            assert!(
                (1.5..=6.5).contains(&t.cycle_ns),
                "{kb}KB cycle {:.2}ns outside Figure 1's band",
                t.cycle_ns
            );
        }
    }

    #[test]
    fn set_associative_is_slower() {
        let m = model();
        for kb in [16u64, 64, 256] {
            let t_dm = m.optimal(&CacheGeometry::paper(kb * 1024, 1), CellKind::SinglePorted);
            let t_sa = m.optimal(&CacheGeometry::paper(kb * 1024, 4), CellKind::SinglePorted);
            assert!(
                t_sa.access_ns > t_dm.access_ns,
                "{kb}KB: 4-way access {:.2} should exceed DM {:.2}",
                t_sa.access_ns,
                t_dm.access_ns
            );
        }
    }

    #[test]
    fn dual_ported_is_slower_than_single() {
        let m = model();
        let g = dm(8);
        let s = m.optimal(&g, CellKind::SinglePorted);
        let d = m.optimal(&g, CellKind::DualPorted);
        assert!(d.cycle_ns > s.cycle_ns, "bigger cells must lengthen wires");
        // But not catastrophically (same order).
        assert!(d.cycle_ns < s.cycle_ns * 1.6);
    }

    #[test]
    fn optimal_beats_unit_org_for_large_caches() {
        let m = model();
        let g = dm(256);
        let unit = m.analyze(&g, &ArrayOrg::UNIT, CellKind::SinglePorted).cycle_ns();
        let best = m.optimal(&g, CellKind::SinglePorted).cycle_ns;
        assert!(
            best < unit / 2.0,
            "organisation search should dramatically beat the monolithic layout: {best:.2} vs {unit:.2}"
        );
    }

    #[test]
    fn l2_access_in_l1_cycles_matches_fig2() {
        // Figure 2 system: 4KB L1; 8KB–256KB 4-way L2 accesses land at
        // ~2 L1 cycles (the worked example gives a 5-cycle miss penalty =
        // 2×2+1).
        let m = model();
        let l1 = m.optimal(&dm(4), CellKind::SinglePorted);
        for kb in [8u64, 16, 32, 64, 128, 256] {
            let l2 = m.optimal(&CacheGeometry::paper(kb * 1024, 4), CellKind::SinglePorted);
            let cycles = (l2.cycle_ns / l1.cycle_ns).ceil() as u32;
            assert!(
                (1..=3).contains(&cycles),
                "{kb}KB L2 = {cycles} L1 cycles (L1 {:.2}ns, L2 {:.2}ns)",
                l1.cycle_ns,
                l2.cycle_ns
            );
        }
    }

    #[test]
    fn breakdown_is_consistent() {
        let m = model();
        let g = CacheGeometry::paper(64 * 1024, 4);
        let t = m.optimal(&g, CellKind::SinglePorted);
        let b = t.breakdown;
        assert!((b.access_ns() - t.access_ns).abs() < 1e-12);
        assert!((b.cycle_ns() - t.cycle_ns).abs() < 1e-12);
        assert!(b.mux > 0.0, "set-associative read needs the mux driver");
        let g_dm = CacheGeometry::paper(64 * 1024, 1);
        let b_dm = m.analyze(&g_dm, &ArrayOrg::UNIT, CellKind::SinglePorted);
        assert_eq!(b_dm.mux, 0.0, "direct-mapped read bypasses the mux driver");
    }

    #[test]
    fn memoised_optimal_is_bit_identical_and_cell_keyed() {
        let m = model();
        let g = CacheGeometry::paper(32 * 1024, 2);
        let cold = m.optimal(&g, CellKind::SinglePorted);
        let warm = m.optimal(&g, CellKind::SinglePorted);
        assert_eq!(cold, warm, "memo hit must replay the exact search result");
        // The cell kind is part of the key: dual-ported must not collide.
        let dual = m.optimal(&g, CellKind::DualPorted);
        assert!(dual.cycle_ns > cold.cycle_ns);
        // A clone starts cold but computes the same pure function.
        assert_eq!(m.clone().optimal(&g, CellKind::SinglePorted), cold);
    }

    #[test]
    fn display_formats() {
        let t = model().optimal(&dm(4), CellKind::SinglePorted);
        let s = t.to_string();
        assert!(s.contains("access") && s.contains("cycle"));
    }
}
