//! Per-access energy model — quantifying the paper's fifth advantage of
//! two-level caching (§1):
//!
//! > "a chip with a two-level cache will usually use less power than one
//! > with a single-level organization ... In a single-level
//! > configuration, wordlines and bitlines are longer, meaning there is a
//! > larger capacitance that needs to be charged or discharged with every
//! > cache access. In a two-level configuration, most accesses only
//! > require an access to a small first-level cache."
//!
//! The model charges, per access, the switched capacitance of the
//! activated data and tag subarrays: precharged bitlines (every column of
//! the selected subarray swings, each loaded by its rows), the selected
//! wordline, the decoders, the sense amplifiers, and the output drivers.
//! Units are arbitrary-but-consistent energy units (`eu`); only ratios
//! between configurations are meaningful, exactly as with rbe for area.

use serde::{Deserialize, Serialize};
use std::fmt;
use tlc_area::{ArrayOrg, CacheGeometry, CellKind};

/// Energy-model coefficients (arbitrary energy units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Bitline energy per cell on a swinging column (× rows × cols of the
    /// activated subarray).
    pub bitline_per_cell: f64,
    /// Wordline energy per cell along the selected row.
    pub wordline_per_cell: f64,
    /// Decoder energy per log₂(rows).
    pub decoder_per_log_row: f64,
    /// Sense-amplifier energy per column.
    pub sense_per_col: f64,
    /// Output-driver energy per output bit.
    pub output_per_bit: f64,
    /// Comparator energy per tag bit.
    pub comparator_per_bit: f64,
    /// Energy of one off-chip access (pad drivers + bus), in the same
    /// units. Dominates everything on-chip, as it did in 1993.
    pub offchip_access: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            bitline_per_cell: 0.010,
            wordline_per_cell: 0.020,
            decoder_per_log_row: 0.500,
            sense_per_col: 0.300,
            output_per_bit: 1.000,
            comparator_per_bit: 0.200,
            offchip_access: 2_000.0,
        }
    }
}

/// Itemised energy of one cache access (arbitrary energy units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Data-array bitline + wordline switching.
    pub data_array: f64,
    /// Tag-array switching.
    pub tag_array: f64,
    /// Decoders (data + tag).
    pub decode: f64,
    /// Sense amplifiers (data + tag).
    pub sense: f64,
    /// Comparators and output drivers.
    pub compare_and_output: f64,
}

impl EnergyBreakdown {
    /// Total energy per access.
    pub fn total(&self) -> f64 {
        self.data_array + self.tag_array + self.decode + self.sense + self.compare_and_output
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} eu/access (data {:.1}, tag {:.1}, decode {:.1}, sense {:.1}, cmp+out {:.1})",
            self.total(),
            self.data_array,
            self.tag_array,
            self.decode,
            self.sense,
            self.compare_and_output
        )
    }
}

/// The per-access energy model. See the module docs.
///
/// # Examples
///
/// ```
/// use tlc_area::{ArrayOrg, CacheGeometry, CellKind};
/// use tlc_timing::EnergyModel;
///
/// let m = EnergyModel::new();
/// let small = m.access_energy(&CacheGeometry::paper(1024, 1), &ArrayOrg::UNIT,
///                             CellKind::SinglePorted);
/// let large = m.access_energy(&CacheGeometry::paper(256 * 1024, 1), &ArrayOrg::UNIT,
///                             CellKind::SinglePorted);
/// assert!(large.total() > small.total(), "longer wires burn more energy");
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Model with default coefficients.
    pub fn new() -> Self {
        EnergyModel { params: EnergyParams::default() }
    }

    /// Model with custom coefficients.
    pub fn with_params(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// The coefficients in use.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Energy of one off-chip access.
    pub fn offchip_access(&self) -> f64 {
        self.params.offchip_access
    }

    /// Energy of one access to a cache with geometry `geom`, organised as
    /// `org`, built from `cell` cells. One data subarray and one tag
    /// subarray activate per access.
    ///
    /// # Panics
    ///
    /// Panics if `org` is not valid for `geom`.
    pub fn access_energy(
        &self,
        geom: &CacheGeometry,
        org: &ArrayOrg,
        cell: CellKind,
    ) -> EnergyBreakdown {
        assert!(org.is_valid_for(geom), "organisation {org} invalid for {geom}");
        let p = &self.params;
        // A bigger cell carries proportionally more wire capacitance.
        let wf = cell.wire_factor();

        let d_rows = org.data_rows(geom);
        let d_cols = org.data_cols(geom);
        let t_rows = org.tag_rows(geom);
        let t_cols = org.tag_cols(geom);

        let array = |rows: f64, cols: f64| {
            // All columns precharge/swing against their row-deep bitlines;
            // one wordline of `cols` cells fires.
            p.bitline_per_cell * rows * cols * wf + p.wordline_per_cell * cols * wf
        };
        let data_array = array(d_rows, d_cols);
        let tag_array = array(t_rows, t_cols);
        let decode = p.decoder_per_log_row * (d_rows.max(1.0).log2() + t_rows.max(1.0).log2());
        let sense = p.sense_per_col * (d_cols + t_cols);
        let compare_and_output = p.comparator_per_bit * (geom.tag_bits() as f64 * geom.ways as f64)
            + p.output_per_bit * 64.0;
        EnergyBreakdown { data_array, tag_array, decode, sense, compare_and_output }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> EnergyModel {
        EnergyModel::new()
    }

    fn dm(kb: u64) -> CacheGeometry {
        CacheGeometry::paper(kb * 1024, 1)
    }

    #[test]
    fn energy_grows_with_size() {
        let mut last = 0.0;
        for kb in [1u64, 4, 16, 64, 256] {
            let e = m().access_energy(&dm(kb), &ArrayOrg::UNIT, CellKind::SinglePorted).total();
            assert!(e > last, "{kb}KB energy {e} not larger than previous {last}");
            last = e;
        }
    }

    #[test]
    fn subdivision_cuts_access_energy() {
        // Splitting the array means only a small subarray's bitlines
        // swing — the physical basis of the paper's power argument.
        let g = dm(64);
        let mono = m().access_energy(&g, &ArrayOrg::UNIT, CellKind::SinglePorted).total();
        let split = ArrayOrg { ndbl: 8, ntbl: 4, ..ArrayOrg::UNIT };
        let e = m().access_energy(&g, &split, CellKind::SinglePorted).total();
        assert!(e < mono, "split {e} should beat monolithic {mono}");
    }

    #[test]
    fn small_l1_beats_large_single_level_per_access() {
        // The §1 claim in microcosm: an 8KB L1 access costs a fraction of
        // a 256KB single-level access (same organisation class).
        let small = m().access_energy(&dm(8), &ArrayOrg::UNIT, CellKind::SinglePorted).total();
        let large = m().access_energy(&dm(256), &ArrayOrg::UNIT, CellKind::SinglePorted).total();
        assert!(large / small > 3.0, "ratio {}", large / small);
    }

    #[test]
    fn dual_ported_costs_more_energy() {
        let g = dm(8);
        let s = m().access_energy(&g, &ArrayOrg::UNIT, CellKind::SinglePorted).total();
        let d = m().access_energy(&g, &ArrayOrg::UNIT, CellKind::DualPorted).total();
        assert!(d > s);
    }

    #[test]
    fn offchip_dominates_onchip() {
        // At the speed-optimal organisation (which any real design would
        // use) even the largest on-chip cache access is cheaper than
        // going off-chip.
        let model = crate::TimingModel::paper();
        let g = dm(256);
        let org = model.optimal(&g, CellKind::SinglePorted).org;
        let e = m().access_energy(&g, &org, CellKind::SinglePorted).total();
        assert!(
            m().offchip_access() > e,
            "off-chip {} must dominate on-chip access energy {e}",
            m().offchip_access()
        );
    }

    #[test]
    fn breakdown_sums_and_displays() {
        let b = m().access_energy(&dm(16), &ArrayOrg::UNIT, CellKind::SinglePorted);
        let total = b.data_array + b.tag_array + b.decode + b.sense + b.compare_and_output;
        assert!((total - b.total()).abs() < 1e-12);
        assert!(b.to_string().contains("eu/access"));
    }

    #[test]
    #[should_panic(expected = "invalid for")]
    fn rejects_invalid_org() {
        let g = dm(1);
        let bad = ArrayOrg { ndbl: 256, ..ArrayOrg::UNIT };
        let _ = m().access_energy(&g, &bad, CellKind::SinglePorted);
    }
}
