//! Transistor-level access-time model in the full Wilton–Jouppi / CACTI
//! 1.0 style.
//!
//! The default [`TimingModel`](crate::TimingModel) uses calibrated stage
//! constants; this module rebuilds each stage from device physics the way
//! WRL TR 93/5 does:
//!
//! * every stage is an RC problem: the driving transistor's on-resistance
//!   against the gate/diffusion/wire capacitance it must move;
//! * stage delays come from Horowitz's approximation, which accounts for
//!   the finite input ramp of the previous stage;
//! * the decoder is a driver → NAND → NOR chain whose fan-in grows with
//!   the array; wordlines and bitlines are distributed RC lines whose
//!   length follows the array organisation; the comparator is a
//!   precharged XOR rail; set-associative reads pay a comparator-driven
//!   output-mux stage.
//!
//! Device constants approximate a 0.8µm CMOS process (the paper's
//! reference technology); the paper's 0.5µm operating point is the usual
//! ×0.5 linear scale. Absolute nanoseconds are *not* the point — the
//! structural model exists so organisation-dependent effects (how delay
//! moves with Ndwl/Ndbl/Nspd, associativity, and cell size) can be
//! studied against the calibrated model; the `timingmodels` exhibit and
//! the cross-model tests below do exactly that.

use crate::model::{CacheTiming, TimingBreakdown};
use serde::{Deserialize, Serialize};
use tlc_area::{ArrayOrg, CacheGeometry, CellKind};

/// Device and layout constants, 0.8µm-class CMOS.
///
/// Units: resistance Ω, capacitance fF, length µm, time ns
/// (RC of Ω·fF = 1e-6 ns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    /// On-resistance of a unit (1µm-wide) NMOS device, Ω·µm.
    pub r_nmos_on: f64,
    /// On-resistance of a unit PMOS device, Ω·µm.
    pub r_pmos_on: f64,
    /// Gate capacitance per µm of transistor width, fF/µm.
    pub c_gate: f64,
    /// Drain-diffusion capacitance per µm of width, fF/µm.
    pub c_diff: f64,
    /// Metal wire capacitance per µm of length, fF/µm.
    pub c_metal: f64,
    /// Metal wire resistance per µm of length, Ω/µm.
    pub r_metal: f64,
    /// SRAM cell width, µm (wordline runs across it).
    pub cell_width: f64,
    /// SRAM cell height, µm (bitline runs along it).
    pub cell_height: f64,
    /// Pass-transistor width inside the cell, µm.
    pub cell_pass_width: f64,
    /// Wordline-driver transistor width, µm.
    pub wordline_driver_width: f64,
    /// Decoder-gate transistor width, µm.
    pub decoder_gate_width: f64,
    /// Sense-amplifier fixed delay, ns (a tuned analog block in every
    /// generation of this model, CACTI included).
    pub sense_amp_delay: f64,
    /// Bitline voltage-swing fraction needed before sensing (differential
    /// sensing needs only a small swing).
    pub bitline_swing: f64,
    /// Comparator transistor width, µm.
    pub comparator_width: f64,
    /// Output-driver width, µm.
    pub output_driver_width: f64,
    /// Output bus capacitance, fF.
    pub output_bus_cap: f64,
    /// Delay of a repeated (buffered) global wire, ns per µm. Long
    /// routes to distributed subarrays are driven through repeaters, so
    /// their delay is linear in length rather than quadratic.
    pub repeated_wire_ns_per_um: f64,
    /// Length of the route segment the address driver itself must charge
    /// before the first repeater, µm.
    pub first_wire_segment_um: f64,
    /// Linear technology scale on all delays (0.5 = the paper's 0.5µm).
    pub scale: f64,
}

impl DeviceParams {
    /// 0.8µm-class reference constants.
    pub fn cmos_0_8um() -> Self {
        DeviceParams {
            r_nmos_on: 9_700.0,
            r_pmos_on: 22_400.0,
            c_gate: 1.95,
            c_diff: 1.25,
            c_metal: 0.275,
            r_metal: 0.08,
            cell_width: 8.0,
            cell_height: 16.0,
            cell_pass_width: 1.0,
            wordline_driver_width: 60.0,
            decoder_gate_width: 10.0,
            sense_amp_delay: 0.58,
            bitline_swing: 0.20,
            comparator_width: 20.0,
            output_driver_width: 100.0,
            output_bus_cap: 500.0,
            repeated_wire_ns_per_um: 1.2e-4,
            first_wire_segment_um: 1_000.0,
            scale: 1.0,
        }
    }

    /// The paper's 0.5µm operating point (×0.5 on all delays, §2.3).
    pub fn paper_0_5um() -> Self {
        DeviceParams { scale: 0.5, ..Self::cmos_0_8um() }
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        Self::paper_0_5um()
    }
}

/// Horowitz's delay approximation for a stage with time constant `tf`
/// (ns), input rise time `input_ramp` (ns), switching at threshold
/// fraction `vth`.
///
/// `delay = tf · sqrt( ln(vth)² + 2·ramp·(1−vth)/tf )` — CACTI 1.0's
/// equation 10 restated; reduces to `tf·|ln(vth)|` for a step input.
pub fn horowitz(tf: f64, input_ramp: f64, vth: f64) -> f64 {
    debug_assert!(tf > 0.0 && (0.0..1.0).contains(&vth));
    let a = (vth.ln()).powi(2);
    let b = 2.0 * input_ramp * (1.0 - vth) / tf;
    tf * (a + b.max(0.0)).sqrt()
}

/// Per-stage result: delay plus the ramp it hands the next stage.
#[derive(Debug, Clone, Copy)]
struct Stage {
    delay: f64,
    ramp: f64,
}

/// Transistor-level timing model. Mirrors the
/// [`TimingModel`](crate::TimingModel) API.
///
/// # Examples
///
/// ```
/// use tlc_area::{CacheGeometry, CellKind};
/// use tlc_timing::DetailedTimingModel;
///
/// let m = DetailedTimingModel::paper();
/// let t = m.optimal(&CacheGeometry::paper(8 * 1024, 1), CellKind::SinglePorted);
/// assert!(t.cycle_ns > t.access_ns);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DetailedTimingModel {
    dev: DeviceParams,
}

impl DetailedTimingModel {
    /// Model at the paper's 0.5µm operating point.
    pub fn paper() -> Self {
        DetailedTimingModel { dev: DeviceParams::paper_0_5um() }
    }

    /// Model with explicit device parameters.
    pub fn with_devices(dev: DeviceParams) -> Self {
        DetailedTimingModel { dev }
    }

    /// The device parameters in use.
    pub fn devices(&self) -> &DeviceParams {
        &self.dev
    }

    /// RC in ns from Ω and fF.
    fn rc(r_ohm: f64, c_ff: f64) -> f64 {
        r_ohm * c_ff * 1e-6
    }

    /// Decoder chain: address driver → NAND3 predecode → NOR row gate.
    /// Fan-out grows with rows; routing to distributed subarrays loads
    /// the driver.
    fn decoder(&self, rows: f64, subarrays: f64, wire_um: f64) -> Stage {
        let d = &self.dev;
        // Stage 1: address driver charges the first wire segment and the
        // predecode gates; the rest of the route is a repeated wire with
        // linear delay (long unbuffered RC would be quadratic and absurd
        // at centimetre-class 0.8µm array sizes).
        let seg = wire_um.min(d.first_wire_segment_um);
        let r1 = d.r_nmos_on / d.decoder_gate_width;
        let c1 = subarrays * 2.0 * d.c_gate * d.decoder_gate_width
            + seg * d.c_metal
            + d.c_diff * d.decoder_gate_width;
        let repeated = (wire_um - seg).max(0.0) * d.repeated_wire_ns_per_um;
        let s1 = horowitz(Self::rc(r1 + seg * d.r_metal / 2.0, c1), 0.2, 0.5) + repeated;
        // Stage 2: NAND3 predecode drives the row-gate inputs; fan-out
        // grows logarithmically with the row count (wider predecode).
        let fan = (rows.max(2.0)).log2() / 3.0;
        let r2 = 3.0 * d.r_nmos_on / d.decoder_gate_width; // series stack of 3
        let c2 = (1.0 + fan) * 2.0 * d.c_gate * d.decoder_gate_width;
        let s2 = horowitz(Self::rc(r2, c2), s1, 0.5);
        // Stage 3: NOR row gate drives the wordline driver's input.
        let r3 = d.r_pmos_on / d.decoder_gate_width;
        let c3 = d.c_gate * d.wordline_driver_width + d.c_diff * d.decoder_gate_width;
        let s3 = horowitz(Self::rc(r3, c3), s2, 0.5);
        Stage { delay: s1 + s2 + s3, ramp: s3 }
    }

    /// Wordline: the driver charges a distributed RC line crossing
    /// `cols` cells, each hanging two pass-gate loads.
    fn wordline(&self, cols: f64, cell: CellKind, ramp_in: f64) -> Stage {
        let d = &self.dev;
        let wf = cell.wire_factor();
        let len = cols * d.cell_width * wf;
        let c_line = len * d.c_metal + cols * 2.0 * d.c_gate * d.cell_pass_width;
        let r_drv = d.r_pmos_on / d.wordline_driver_width;
        // Distributed line: driver R sees full C; line R sees C/2.
        let tf = Self::rc(r_drv, c_line) + Self::rc(len * d.r_metal, c_line / 2.0);
        let s = horowitz(tf, ramp_in, 0.5);
        Stage { delay: s, ramp: s }
    }

    /// Bitline: the cell's pass transistor discharges a line of `rows`
    /// cells' diffusion plus wire, to the sensing swing.
    fn bitline(&self, rows: f64, cell: CellKind, ramp_in: f64) -> Stage {
        let d = &self.dev;
        let wf = cell.wire_factor();
        let len = rows * d.cell_height * wf;
        let c_line = len * d.c_metal + rows * d.c_diff * d.cell_pass_width;
        let r_cell = d.r_nmos_on / d.cell_pass_width; // pass gate + driver stack
        let tf = Self::rc(2.0 * r_cell, c_line) + Self::rc(len * d.r_metal, c_line / 2.0);
        // Only a small differential swing is needed before the sense amp
        // fires: threshold = 1 - swing.
        let s = horowitz(tf, ramp_in, 1.0 - d.bitline_swing);
        Stage { delay: s, ramp: s }
    }

    /// Comparator: precharged XOR rail over the tag bits.
    fn comparator(&self, tag_bits: f64, ramp_in: f64) -> Stage {
        let d = &self.dev;
        let r = 2.0 * d.r_nmos_on / d.comparator_width;
        let c = tag_bits * d.c_diff * d.comparator_width + 40.0;
        let s = horowitz(Self::rc(r, c), ramp_in, 0.5);
        Stage { delay: s, ramp: s }
    }

    /// Output (or way-select mux) driver onto the data bus.
    fn output_driver(&self, ramp_in: f64) -> Stage {
        let d = &self.dev;
        let r = d.r_nmos_on / d.output_driver_width;
        let c = d.output_bus_cap + d.c_diff * d.output_driver_width;
        let s = horowitz(Self::rc(r, c), ramp_in, 0.5);
        Stage { delay: s, ramp: s }
    }

    /// Stage delays for `geom` organised as `org` with `cell` cells.
    ///
    /// # Panics
    ///
    /// Panics if `org` is not valid for `geom`.
    pub fn analyze(&self, geom: &CacheGeometry, org: &ArrayOrg, cell: CellKind) -> TimingBreakdown {
        assert!(org.is_valid_for(geom), "organisation {org} invalid for {geom}");
        let d = &self.dev;

        let d_rows = org.data_rows(geom);
        let d_cols = org.data_cols(geom);
        let t_rows = org.tag_rows(geom);
        let t_cols = org.tag_cols(geom);

        // Routing distance to the distributed subarray decoders: half the
        // edge of the tiled array (an H-tree reaches every subarray in
        // about that length).
        let route = |subarrays: f64, rows: f64, cols: f64| {
            (subarrays * rows * d.cell_height * cols * d.cell_width).sqrt() / 2.0
        };

        let dec_d = self.decoder(
            d_rows,
            org.data_subarrays() as f64,
            route(org.data_subarrays() as f64, d_rows, d_cols),
        );
        let wl_d = self.wordline(d_cols, cell, dec_d.ramp);
        let bl_d = self.bitline(d_rows, cell, wl_d.ramp);

        let dec_t = self.decoder(
            t_rows,
            org.tag_subarrays() as f64,
            route(org.tag_subarrays() as f64, t_rows, t_cols),
        );
        let wl_t = self.wordline(t_cols, cell, dec_t.ramp);
        let bl_t = self.bitline(t_rows, cell, wl_t.ramp);

        let cmp = self.comparator(geom.tag_bits() as f64, d.sense_amp_delay);
        let mux = if geom.ways > 1 { self.output_driver(cmp.ramp).delay } else { 0.0 };
        let out = self.output_driver(0.3).delay;

        // Precharge: restore the bitline's full swing through the
        // precharge PMOS.
        let len = d_rows * d.cell_height * cell.wire_factor();
        let c_line = len * d.c_metal + d_rows * d.c_diff * d.cell_pass_width;
        let precharge =
            0.45 + horowitz(Self::rc(d.r_pmos_on / d.wordline_driver_width, c_line), 0.2, 0.5);

        let s = d.scale;
        TimingBreakdown {
            data_decode: dec_d.delay * s,
            data_wordline: wl_d.delay * s,
            data_bitline: bl_d.delay * s,
            tag_decode: dec_t.delay * s,
            tag_wordline: wl_t.delay * s,
            tag_bitline: bl_t.delay * s,
            sense: d.sense_amp_delay * s,
            compare: cmp.delay * s,
            mux: mux * s,
            output: out * s,
            precharge: precharge * s,
        }
    }

    /// Organisation search for the fastest layout (same policy as the
    /// calibrated model: minimum cycle, near-ties to fewer subarrays).
    pub fn optimal(&self, geom: &CacheGeometry, cell: CellKind) -> CacheTiming {
        let mut best: Option<CacheTiming> = None;
        for org in crate::model::candidate_orgs(geom) {
            let b = self.analyze(geom, &org, cell);
            let cand =
                CacheTiming { access_ns: b.access_ns(), cycle_ns: b.cycle_ns(), org, breakdown: b };
            let subarrays = |t: &CacheTiming| t.org.data_subarrays() + t.org.tag_subarrays();
            let better = match &best {
                None => true,
                Some(cur) => {
                    cand.cycle_ns < cur.cycle_ns - 5e-3
                        || ((cand.cycle_ns - cur.cycle_ns).abs() <= 5e-3
                            && (subarrays(&cand) < subarrays(cur)
                                || (subarrays(&cand) == subarrays(cur)
                                    && cand.access_ns < cur.access_ns)))
                }
            };
            if better {
                best = Some(cand);
            }
        }
        best.expect("at least the unit organisation is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimingModel;

    fn dm(kb: u64) -> CacheGeometry {
        CacheGeometry::paper(kb * 1024, 1)
    }

    #[test]
    fn horowitz_reduces_to_log_for_step_input() {
        let tf = 1.0;
        let step = horowitz(tf, 0.0, 0.5);
        assert!((step - 0.5f64.ln().abs()).abs() < 1e-12);
        // Slower input ramps increase the delay.
        assert!(horowitz(tf, 1.0, 0.5) > step);
    }

    #[test]
    fn cycle_exceeds_access_and_grows_with_size() {
        let m = DetailedTimingModel::paper();
        let mut last = 0.0;
        for kb in [1u64, 4, 16, 64, 256] {
            let t = m.optimal(&dm(kb), CellKind::SinglePorted);
            assert!(t.cycle_ns > t.access_ns, "{kb}KB");
            assert!(t.cycle_ns >= last - 1e-9, "{kb}KB not monotone");
            assert!(t.cycle_ns > 0.5 && t.cycle_ns < 30.0, "{kb}KB implausible: {}", t.cycle_ns);
            last = t.cycle_ns;
        }
    }

    #[test]
    fn spread_is_structurally_plausible() {
        // The calibrated model reproduces the paper's 1.8× exactly; the
        // transistor-level model, charging honest wire lengths for
        // centimetre-class 0.8µm arrays, comes out steeper. Both must
        // grow, and the structural spread must stay within a plausible
        // band of the paper's.
        let m = DetailedTimingModel::paper();
        let small = m.optimal(&dm(1), CellKind::SinglePorted).cycle_ns;
        let large = m.optimal(&dm(256), CellKind::SinglePorted).cycle_ns;
        let ratio = large / small;
        assert!((1.3..4.0).contains(&ratio), "spread {ratio:.2}");
    }

    #[test]
    fn set_associative_pays_the_mux() {
        let m = DetailedTimingModel::paper();
        for kb in [16u64, 64] {
            let t_dm = m.optimal(&CacheGeometry::paper(kb * 1024, 1), CellKind::SinglePorted);
            let t_sa = m.optimal(&CacheGeometry::paper(kb * 1024, 4), CellKind::SinglePorted);
            assert!(t_sa.access_ns > t_dm.access_ns, "{kb}KB");
        }
    }

    #[test]
    fn dual_ported_cells_are_slower() {
        let m = DetailedTimingModel::paper();
        let g = dm(8);
        let s = m.optimal(&g, CellKind::SinglePorted).cycle_ns;
        let d = m.optimal(&g, CellKind::DualPorted).cycle_ns;
        assert!(d > s);
    }

    #[test]
    fn agrees_with_calibrated_model_on_size_ordering() {
        // The two models must rank cache sizes identically (and nearly
        // proportionally) even though their absolute values differ.
        let detailed = DetailedTimingModel::paper();
        let simple = TimingModel::paper();
        let sizes = [1u64, 2, 4, 8, 16, 32, 64, 128, 256];
        let dv: Vec<f64> = sizes
            .iter()
            .map(|&kb| detailed.optimal(&dm(kb), CellKind::SinglePorted).cycle_ns)
            .collect();
        let sv: Vec<f64> = sizes
            .iter()
            .map(|&kb| simple.optimal(&dm(kb), CellKind::SinglePorted).cycle_ns)
            .collect();
        for i in 1..sizes.len() {
            assert!(
                (dv[i] >= dv[i - 1] - 1e-9) == (sv[i] >= sv[i - 1] - 1e-9),
                "models disagree on ordering at {}KB",
                sizes[i]
            );
        }
        // Pearson correlation of the two curves should be very high.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (md, ms) = (mean(&dv), mean(&sv));
        let cov: f64 = dv.iter().zip(&sv).map(|(a, b)| (a - md) * (b - ms)).sum();
        let sd = |v: &[f64], m: f64| v.iter().map(|a| (a - m).powi(2)).sum::<f64>().sqrt();
        let corr = cov / (sd(&dv, md) * sd(&sv, ms));
        assert!(corr > 0.95, "model correlation only {corr:.3}");
    }

    #[test]
    fn organisation_search_beats_monolithic_for_big_arrays() {
        let m = DetailedTimingModel::paper();
        let g = dm(256);
        let unit = m.analyze(&g, &ArrayOrg::UNIT, CellKind::SinglePorted).cycle_ns();
        let best = m.optimal(&g, CellKind::SinglePorted).cycle_ns;
        assert!(best < unit / 1.5, "search {best:.2} vs monolithic {unit:.2}");
    }

    #[test]
    #[should_panic(expected = "invalid for")]
    fn rejects_invalid_org() {
        let m = DetailedTimingModel::paper();
        let bad = ArrayOrg { ndbl: 256, ..ArrayOrg::UNIT };
        let _ = m.analyze(&dm(1), &bad, CellKind::SinglePorted);
    }
}
