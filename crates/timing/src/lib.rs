//! # tlc-timing — SRAM cache access/cycle-time model
//!
//! Access-time substrate for the reproduction of Jouppi & Wilton,
//! *Tradeoffs in Two-Level On-Chip Caching* (WRL 93/3 / ISCA 1994),
//! following Wada, Rajan & Przybylski (IEEE JSSC 27(8), 1992) as extended
//! by Wilton & Jouppi (WRL TR 93/5 — the direct ancestor of CACTI).
//!
//! Given a cache geometry, the model computes stage delays (decoder,
//! wordline, bitline, sense amp, comparator, mux driver, output driver,
//! precharge), searches array organisations for the fastest layout, and
//! reports both **access** and **cycle** time, scaled from the 0.8µm
//! reference process to the paper's 0.5µm operating point (×0.5).
//!
//! ```
//! use tlc_area::{CacheGeometry, CellKind};
//! use tlc_timing::TimingModel;
//!
//! let model = TimingModel::paper();
//! let t = model.optimal(&CacheGeometry::paper(8 * 1024, 1), CellKind::SinglePorted);
//! println!("8KB direct-mapped L1: {t}");
//! assert!(t.access_ns > 1.0 && t.cycle_ns < 6.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod detailed;
mod energy;
mod model;
mod tech;

pub use detailed::{horowitz, DetailedTimingModel, DeviceParams};
pub use energy::{EnergyBreakdown, EnergyModel, EnergyParams};
pub use model::{CacheTiming, TimingBreakdown, TimingModel};
pub use tech::TechParams;
