//! Technology parameters of the access-time model.
//!
//! Wada et al. and Wilton & Jouppi fit their delay equations to SPICE
//! simulations of a 0.8µm CMOS process; the paper then scales the results
//! "to more closely match a high-performance 0.5µm CMOS technology...
//! resulting in an overall cycle time reduction to 50%" (§2.3). We keep
//! the same two-stage structure: a set of 0.8µm-era stage constants plus a
//! single linear technology scale factor.
//!
//! The constants below are not SPICE-extracted (the original netlists are
//! long gone); they are calibrated so the *published* outputs of the model
//! hold: the ≈1.8× cycle-time spread from 1KB to 256KB first-level caches
//! (§2.1, Figure 1), cycle times in the 2.5–5.5ns band after scaling, and
//! second-level access times of ≈2 processor cycles for the Figure 2
//! system.

use serde::{Deserialize, Serialize};

/// Stage-delay constants, in nanoseconds at the 0.8µm reference process,
/// plus the linear technology scale factor applied to every output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechParams {
    /// Distributed-RC wordline delay coefficient: ns per (column count)².
    pub wordline_rc: f64,
    /// Distributed-RC bitline delay coefficient: ns per (row count)².
    pub bitline_rc: f64,
    /// Decoder intrinsic delay (predecode + gates), ns.
    pub decoder_base: f64,
    /// Decoder delay per log₂(rows) — fan-in growth, ns.
    pub decoder_per_log_row: f64,
    /// Address/select routing delay per √(subarray count) — wire to the
    /// distributed subarray decoders, ns.
    pub route_per_sqrt_subarray: f64,
    /// Sense-amplifier delay, ns.
    pub sense_amp: f64,
    /// Tag comparator intrinsic delay, ns.
    pub comparator_base: f64,
    /// Comparator delay per tag bit, ns.
    pub comparator_per_bit: f64,
    /// Output-mux driver delay (set-associative data select), ns.
    pub mux_driver: f64,
    /// Data output driver delay, ns.
    pub output_driver: f64,
    /// Precharge intrinsic time, ns.
    pub precharge_base: f64,
    /// Precharge time as a fraction of the data bitline delay.
    pub precharge_bitline_factor: f64,
    /// Linear technology scale applied to all delays (0.5 ⇒ the paper's
    /// 0.5µm scaling).
    pub scale: f64,
}

impl TechParams {
    /// The 0.8µm reference parameter set (unscaled).
    pub fn wrl_0_8um() -> Self {
        TechParams {
            wordline_rc: 7.0e-6,
            bitline_rc: 6.0e-5,
            decoder_base: 1.10,
            decoder_per_log_row: 0.16,
            route_per_sqrt_subarray: 0.42,
            sense_amp: 0.75,
            comparator_base: 0.60,
            comparator_per_bit: 0.015,
            mux_driver: 0.60,
            output_driver: 0.90,
            precharge_base: 0.60,
            precharge_bitline_factor: 1.0,
            scale: 1.0,
        }
    }

    /// The paper's operating point: 0.8µm constants scaled by 0.5 to a
    /// high-performance 0.5µm process (§2.3).
    pub fn paper_0_5um() -> Self {
        TechParams { scale: 0.5, ..Self::wrl_0_8um() }
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self::paper_0_5um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_are_halved_reference() {
        let r = TechParams::wrl_0_8um();
        let p = TechParams::paper_0_5um();
        assert_eq!(r.scale, 1.0);
        assert_eq!(p.scale, 0.5);
        assert_eq!(p.wordline_rc, r.wordline_rc);
        assert_eq!(TechParams::default(), p);
    }

    #[test]
    fn constants_are_positive() {
        let p = TechParams::default();
        for v in [
            p.wordline_rc,
            p.bitline_rc,
            p.decoder_base,
            p.decoder_per_log_row,
            p.route_per_sqrt_subarray,
            p.sense_amp,
            p.comparator_base,
            p.comparator_per_bit,
            p.mux_driver,
            p.output_driver,
            p.precharge_base,
            p.precharge_bitline_factor,
            p.scale,
        ] {
            assert!(v > 0.0);
        }
    }
}
