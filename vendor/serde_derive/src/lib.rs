//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls for the vendored `serde`
//! stub's value-model traits. Implemented with hand-rolled token parsing
//! (the build environment has neither `syn` nor `quote`), so it supports
//! exactly the shapes this workspace uses:
//!
//! * structs with named fields (with optional `#[serde(default = "fn")]`);
//! * one-field tuple structs (newtypes);
//! * enums of unit and/or one-field tuple variants, optionally with
//!   `#[serde(rename_all = "snake_case")]`.
//!
//! Generics are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed named field.
struct Field {
    name: String,
    /// Path given by `#[serde(default = "path")]`, if any.
    default_fn: Option<String>,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    has_payload: bool,
}

/// The derive input shapes we understand.
enum Input {
    NamedStruct { name: String, fields: Vec<Field> },
    NewtypeStruct { name: String },
    Enum { name: String, snake_case: bool, variants: Vec<Variant> },
}

/// Converts `CamelCase` to `snake_case` (serde's rename_all rule).
fn to_snake_case(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 4);
    for (i, c) in s.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Extracts `key = "value"` pairs from a `#[serde(...)]` attribute body.
fn serde_attr_pairs(group: &proc_macro::Group) -> Vec<(String, String)> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut pairs = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(key) = &tokens[i] {
            if i + 2 < tokens.len() {
                if let (TokenTree::Punct(eq), TokenTree::Literal(lit)) =
                    (&tokens[i + 1], &tokens[i + 2])
                {
                    if eq.as_char() == '=' {
                        let raw = lit.to_string();
                        let value = raw.trim_matches('"').to_string();
                        pairs.push((key.to_string(), value));
                        i += 3;
                        continue;
                    }
                }
            }
            pairs.push((key.to_string(), String::new()));
        }
        i += 1;
    }
    pairs
}

/// Consumes leading `#[...]` attributes, returning the serde `key=value`
/// pairs found among them.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    while *pos + 1 < tokens.len() {
        let is_hash = matches!(&tokens[*pos], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        if let TokenTree::Group(g) = &tokens[*pos + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(name)) = inner.first() {
                    if name.to_string() == "serde" {
                        if let Some(TokenTree::Group(body)) = inner.get(1) {
                            pairs.extend(serde_attr_pairs(body));
                        }
                    }
                }
                *pos += 2;
                continue;
            }
        }
        break;
    }
    pairs
}

/// Skips an optional `pub` / `pub(...)` visibility.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens[*pos], TokenTree::Ident(i) if i.to_string() == "pub") {
        *pos += 1;
        if *pos < tokens.len() {
            if let TokenTree::Group(g) = &tokens[*pos] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Splits a token list on top-level commas (angle-bracket aware).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().expect("non-empty").push(t.clone());
    }
    if parts.last().map(Vec::is_empty).unwrap_or(false) {
        parts.pop();
    }
    parts
}

/// Parses the fields of a named-field struct body.
fn parse_named_fields(body: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = take_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after field `{name}`, found `{other}`")),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            pos += 1;
        }
        let default_fn = attrs.iter().find(|(k, _)| k == "default").map(|(_, v)| v.clone());
        fields.push(Field { name, default_fn });
    }
    Ok(fields)
}

/// Parses the variants of an enum body.
fn parse_variants(body: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let _attrs = take_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        pos += 1;
        let mut has_payload = false;
        if pos < tokens.len() {
            if let TokenTree::Group(g) = &tokens[pos] {
                match g.delimiter() {
                    Delimiter::Parenthesis => {
                        let payload: Vec<TokenTree> = g.stream().into_iter().collect();
                        if split_top_level_commas(&payload).len() != 1 {
                            return Err(format!(
                                "variant `{name}`: only one-field tuple variants are supported"
                            ));
                        }
                        has_payload = true;
                        pos += 1;
                    }
                    Delimiter::Brace => {
                        return Err(format!("variant `{name}`: struct variants are not supported"));
                    }
                    _ => {}
                }
            }
        }
        // Skip to the comma separating variants.
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push(Variant { name, has_payload });
    }
    Ok(variants)
}

/// Parses a derive input into one of the supported shapes.
fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let item_attrs = take_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let kind = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => return Err(format!("expected type name, found `{other}`")),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("`{name}`: generic types are not supported by the vendored derive"));
    }
    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Input::NamedStruct { name, fields: parse_named_fields(g)? })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let payload: Vec<TokenTree> = g.stream().into_iter().collect();
                if split_top_level_commas(&payload).len() != 1 {
                    return Err(format!("`{name}`: only one-field tuple structs are supported"));
                }
                Ok(Input::NewtypeStruct { name })
            }
            other => Err(format!("`{name}`: unsupported struct body {other:?}")),
        },
        "enum" => {
            let snake_case = item_attrs.iter().any(|(k, v)| k == "rename_all" && v == "snake_case");
            match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Ok(Input::Enum { name, snake_case, variants: parse_variants(g)? })
                }
                other => Err(format!("`{name}`: unsupported enum body {other:?}")),
            }
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid compile_error")
}

/// Tag under which a variant (de)serialises.
fn variant_tag(v: &Variant, snake_case: bool) -> String {
    if snake_case {
        to_snake_case(&v.name)
    } else {
        v.name.clone()
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let code = match parsed {
        Input::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), ::serde::Serialize::serialize_value(&self.{n})),",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::__private::Value {{\n\
                         ::serde::__private::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Input::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::__private::Value {{\n\
                     ::serde::Serialize::serialize_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Input::Enum { name, snake_case, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let tag = variant_tag(v, snake_case);
                    if v.has_payload {
                        format!(
                            "{name}::{v}(inner) => ::serde::__private::Value::Object(vec![(\
                             \"{tag}\".to_string(), ::serde::Serialize::serialize_value(inner))]),",
                            v = v.name
                        )
                    } else {
                        format!(
                            "{name}::{v} => ::serde::__private::Value::Str(\"{tag}\".to_string()),",
                            v = v.name
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::__private::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let code = match parsed {
        Input::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| match &f.default_fn {
                    None => format!(
                        "{n}: ::serde::__private::field(v, \"{name}\", \"{n}\")?,",
                        n = f.name
                    ),
                    Some(path) => format!(
                        "{n}: match v.get(\"{n}\") {{\n\
                             Some(x) => ::serde::Deserialize::deserialize_value(x).map_err(|e| \
                                 ::serde::__private::Error::custom(format!(\"{name}.{n}: {{e}}\")))?,\n\
                             None => {path}(),\n\
                         }},",
                        n = f.name
                    ),
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &::serde::__private::Value) \
                         -> ::std::result::Result<Self, ::serde::__private::Error> {{\n\
                         if v.as_object().is_none() {{\n\
                             return Err(::serde::__private::Error::custom(format!(\
                                 \"expected object for {name}, found {{}}\", v.kind())));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Input::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(v: &::serde::__private::Value) \
                     -> ::std::result::Result<Self, ::serde::__private::Error> {{\n\
                     Ok({name}(::serde::Deserialize::deserialize_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Input::Enum { name, snake_case, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| !v.has_payload)
                .map(|v| {
                    format!(
                        "\"{tag}\" => Ok({name}::{v}),",
                        tag = variant_tag(v, snake_case),
                        v = v.name
                    )
                })
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|v| v.has_payload)
                .map(|v| {
                    format!(
                        "\"{tag}\" => Ok({name}::{v}(::serde::Deserialize::deserialize_value(val)?)),",
                        tag = variant_tag(v, snake_case),
                        v = v.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &::serde::__private::Value) \
                         -> ::std::result::Result<Self, ::serde::__private::Error> {{\n\
                         match v {{\n\
                             ::serde::__private::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::__private::Error::custom(format!(\
                                     \"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::__private::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (tag, val) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {payload_arms}\n\
                                     other => Err(::serde::__private::Error::custom(format!(\
                                         \"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::__private::Error::custom(format!(\
                                 \"expected variant of {name}, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
