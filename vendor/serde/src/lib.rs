//! Offline stand-in for `serde`.
//!
//! The build environment for this repository has no network access, so the
//! real `serde` cannot be fetched. This vendored replacement keeps the two
//! trait names and the derive-macro surface the workspace uses, but routes
//! everything through a single JSON-shaped [`__private::Value`] model
//! instead of serde's visitor architecture. The companion `serde_json`
//! stub parses/prints that model, and the `serde_derive` stub generates
//! `Serialize`/`Deserialize` impls for the plain structs and enums this
//! workspace defines.
//!
//! Only the subset this repository exercises is implemented; it is not a
//! general serde replacement.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A type that can render itself into the JSON-shaped value model.
pub trait Serialize {
    /// Converts `self` into a [`__private::Value`].
    fn serialize_value(&self) -> __private::Value;
}

/// A type that can be reconstructed from the JSON-shaped value model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a parsed [`__private::Value`].
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match `Self`.
    fn deserialize_value(v: &__private::Value) -> Result<Self, __private::Error>;

    /// Called when a struct field of this type is absent from the input.
    /// The default errors; `Option<T>` overrides it to produce `None`.
    ///
    /// # Errors
    ///
    /// Returns an error unless the type tolerates a missing field.
    fn deserialize_missing() -> Result<Self, __private::Error> {
        Err(__private::Error::custom("missing field"))
    }
}

/// Support machinery shared with `serde_json` and the derive macros.
/// Not part of the public API contract.
pub mod __private {
    use std::fmt;

    /// A JSON number, kept in its widest lossless representation.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Number {
        /// Non-negative integer.
        U(u64),
        /// Negative integer.
        I(i64),
        /// Anything with a fractional part or exponent.
        F(f64),
    }

    impl Number {
        /// Value as `f64` (always possible, may round).
        pub fn as_f64(self) -> f64 {
            match self {
                Number::U(v) => v as f64,
                Number::I(v) => v as f64,
                Number::F(v) => v,
            }
        }

        /// Value as `u64` if losslessly representable.
        pub fn as_u64(self) -> Option<u64> {
            match self {
                Number::U(v) => Some(v),
                Number::I(v) if v >= 0 => Some(v as u64),
                Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                    Some(v as u64)
                }
                _ => None,
            }
        }

        /// Value as `i64` if losslessly representable.
        pub fn as_i64(self) -> Option<i64> {
            match self {
                Number::U(v) if v <= i64::MAX as u64 => Some(v as i64),
                Number::I(v) => Some(v),
                Number::F(v)
                    if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
                {
                    Some(v as i64)
                }
                _ => None,
            }
        }
    }

    /// The JSON-shaped data model every `Serialize`/`Deserialize` impl
    /// goes through. Object entries keep insertion order so serialised
    /// output is stable.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// JSON boolean.
        Bool(bool),
        /// JSON number.
        Num(Number),
        /// JSON string.
        Str(String),
        /// JSON array.
        Array(Vec<Value>),
        /// JSON object (ordered key/value pairs).
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The object entries, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(entries) => Some(entries),
                _ => None,
            }
        }

        /// Looks up a key in an object value.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The string, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The number as f64, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(n.as_f64()),
                _ => None,
            }
        }

        /// The number as u64, if this is a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) => n.as_u64(),
                _ => None,
            }
        }

        /// One-word description of the value's shape, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "boolean",
                Value::Num(_) => "number",
                Value::Str(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            }
        }
    }

    /// Serialisation/deserialisation error: a plain message.
    #[derive(Debug, Clone)]
    pub struct Error {
        message: String,
    }

    impl Error {
        /// Creates an error from any displayable message.
        pub fn custom(msg: impl fmt::Display) -> Self {
            Error { message: msg.to_string() }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for Error {}

    /// Derive-macro helper: fetches a required struct field, falling back
    /// to the type's missing-field behaviour (errors for most types,
    /// `None` for `Option`).
    pub fn field<T: crate::Deserialize>(v: &Value, ty: &str, name: &str) -> Result<T, Error> {
        match v.get(name) {
            Some(x) => {
                T::deserialize_value(x).map_err(|e| Error::custom(format!("{ty}.{name}: {e}")))
            }
            None => T::deserialize_missing()
                .map_err(|_| Error::custom(format!("missing field `{name}` in {ty}"))),
        }
    }
}

use __private::{Error, Number, Value};

// Identity impls: parsing into `Value` keeps the raw JSON shape, for
// callers that inspect documents structurally (schema dispatch, tests
// over hand-built JSON like trace-event exports).
impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n.as_u64().and_then(|x| <$t>::try_from(x).ok()).ok_or_else(
                        || Error::custom(concat!("number out of range for ", stringify!($t))),
                    ),
                    other => Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", found {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Num(Number::U(v as u64))
                } else {
                    Value::Num(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n.as_i64().and_then(|x| <$t>::try_from(x).ok()).ok_or_else(
                        || Error::custom(concat!("number out of range for ", stringify!($t))),
                    ),
                    other => Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", found {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Num(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(n.as_f64() as $t),
                    other => Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", found {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected boolean, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }

    fn deserialize_missing() -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize_value(v)?))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize_value(&items[0])?, B::deserialize_value(&items[1])?))
            }
            other => {
                Err(Error::custom(format!("expected 2-element array, found {}", other.kind())))
            }
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::deserialize_value(&items[0])?,
                B::deserialize_value(&items[1])?,
                C::deserialize_value(&items[2])?,
            )),
            other => {
                Err(Error::custom(format!("expected 3-element array, found {}", other.kind())))
            }
        }
    }
}
