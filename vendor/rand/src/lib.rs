//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this repository has no network access, so the
//! real `rand` crate cannot be fetched. This vendored replacement provides
//! the exact subset the workspace uses — `StdRng`, [`SeedableRng`] with
//! `seed_from_u64`, and [`Rng::gen_bool`] / [`Rng::gen_range`] /
//! [`Rng::gen`] — with the same statistical quality class as the real
//! implementation (`StdRng` is a 12-round ChaCha generator, like
//! rand 0.8's).
//!
//! Streams are **deterministic given a seed**, which is the only property
//! the simulator relies on; they are not bit-identical to crates.io
//! `rand`'s streams, so recorded calibration numbers were produced against
//! this implementation.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed (PCG-style mixing, as in
    /// rand_core 0.6) and constructs the generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        // Multiplier/increment from rand_core's seed_from_u64.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of a supported type (`f64` in `[0, 1)`,
    /// or a full-width integer).
    fn gen<T: SampleUniformFull>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_full(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0,1], got {p}");
        if p >= 1.0 {
            return true;
        }
        // 64-bit threshold comparison (Bernoulli-style): unbiased to 2^-64.
        let threshold = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < threshold
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types [`Rng::gen`] can produce without an explicit range.
pub trait SampleUniformFull {
    /// Samples a value covering the type's full natural domain.
    fn sample_full<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleUniformFull for f64 {
    fn sample_full<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniformFull for u64 {
    fn sample_full<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniformFull for u32 {
    fn sample_full<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleUniformFull for bool {
    fn sample_full<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, bound)` via rejection sampling.
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Largest multiple of `bound` that fits in u64; reject above it.
    let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty f64 range");
        let u = f64::sample_full(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range called with empty f64 range");
        let u = f64::sample_full(rng);
        (start + u * (end - start)).min(end)
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range called with empty f32 range");
        let u = f64::sample_full(rng) as f32;
        (start + u * (end - start)).min(end)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range called with empty f32 range");
        let u = f64::sample_full(rng) as f32;
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: ChaCha with 12 rounds (the
    /// same algorithm family and round count as rand 0.8's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        /// ChaCha state: 4 constant words, 8 key words, 2 counter words,
        /// 2 nonce words.
        key: [u32; 8],
        counter: u64,
        buffer: [u32; 16],
        /// Next unserved word index in `buffer`; 16 = buffer exhausted.
        index: usize,
    }

    const CHACHA_ROUNDS: usize = 12;

    #[inline(always)]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    impl StdRng {
        fn refill(&mut self) {
            let mut state: [u32; 16] = [
                0x6170_7865,
                0x3320_646e,
                0x7962_2d32,
                0x6b20_6574,
                self.key[0],
                self.key[1],
                self.key[2],
                self.key[3],
                self.key[4],
                self.key[5],
                self.key[6],
                self.key[7],
                self.counter as u32,
                (self.counter >> 32) as u32,
                0,
                0,
            ];
            let initial = state;
            for _ in 0..CHACHA_ROUNDS / 2 {
                // Column round.
                quarter_round(&mut state, 0, 4, 8, 12);
                quarter_round(&mut state, 1, 5, 9, 13);
                quarter_round(&mut state, 2, 6, 10, 14);
                quarter_round(&mut state, 3, 7, 11, 15);
                // Diagonal round.
                quarter_round(&mut state, 0, 5, 10, 15);
                quarter_round(&mut state, 1, 6, 11, 12);
                quarter_round(&mut state, 2, 7, 8, 13);
                quarter_round(&mut state, 3, 4, 9, 14);
            }
            for (out, (w, i)) in self.buffer.iter_mut().zip(state.iter().zip(initial.iter())) {
                *out = w.wrapping_add(*i);
            }
            self.counter = self.counter.wrapping_add(1);
            self.index = 0;
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            if self.index >= 16 {
                self.refill();
            }
            let w = self.buffer[self.index];
            self.index += 1;
            w
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let lo = self.next_u32() as u64;
            let hi = self.next_u32() as u64;
            lo | (hi << 32)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(4) {
                let w = self.next_u32().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks(4)) {
                *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
            StdRng { key, counter: 0, buffer: [0; 16], index: 16 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "observed {p}");
        let mut rng = StdRng::seed_from_u64(8);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=7);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
