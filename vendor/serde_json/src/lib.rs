//! Offline stand-in for `serde_json`.
//!
//! Parses and prints JSON against the vendored `serde` stub's value model.
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null); integers survive round trips losslessly and
//! floats print with Rust's shortest-roundtrip formatting.

#![warn(missing_docs)]

pub use serde::__private::{Error, Number, Value};

/// Parses a JSON string into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document()?;
    T::deserialize_value(&value)
}

/// Serialises a value to compact JSON.
///
/// # Errors
///
/// Never fails for the types this workspace serialises; the `Result` is
/// kept for serde_json API compatibility.
pub fn to_string<T: serde::Serialize>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.serialize_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialises a value to human-readable JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the types this workspace serialises; the `Result` is
/// kept for serde_json API compatibility.
pub fn to_string_pretty<T: serde::Serialize>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.serialize_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::U(v) => out.push_str(&v.to_string()),
        Number::I(v) => out.push_str(&v.to_string()),
        Number::F(v) if v.is_finite() => {
            // `{:?}` is Rust's shortest representation that round-trips.
            let s = format!("{v:?}");
            out.push_str(&s);
        }
        // JSON has no NaN/inf; serde_json emits null.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth), ": "),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(colon);
                write_value(val, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::custom(format!("trailing characters at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!("expected `,` or `}}` at byte {}", self.pos)))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!("expected `,` or `]` at byte {}", self.pos)))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (may be multi-byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let n = if is_float {
            Number::F(text.parse::<f64>().map_err(|_| Error::custom("invalid number"))?)
        } else if let Ok(u) = text.parse::<u64>() {
            Number::U(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::I(i)
        } else {
            Number::F(text.parse::<f64>().map_err(|_| Error::custom("invalid number"))?)
        };
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let compact = {
            let mut s = String::new();
            write_value(v, None, 0, &mut s);
            s
        };
        Parser { bytes: compact.as_bytes(), pos: 0 }.parse_document().expect("parses")
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Num(Number::U(u64::MAX)),
            Value::Num(Number::I(-42)),
            Value::Num(Number::F(0.1)),
            Value::Str("hé\"\\\n".into()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn container_roundtrips() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::Num(Number::U(1)), Value::Null])),
            ("b".into(), Value::Object(vec![("x".into(), Value::Num(Number::F(2.5)))])),
            ("empty".into(), Value::Array(vec![])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::Bool(true)]))]);
        let mut s = String::new();
        write_value(&v, Some(2), 0, &mut s);
        assert!(s.contains("\n  \"k\": [\n    true\n  ]"));
        let back = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document().expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Parser { bytes: b"{", pos: 0 }.parse_document().is_err());
        assert!(Parser { bytes: b"[1,]", pos: 0 }.parse_document().is_err());
        assert!(Parser { bytes: b"1 2", pos: 0 }.parse_document().is_err());
    }
}
