//! Offline stand-in for `criterion`.
//!
//! The build environment for this repository has no network access, so the
//! real `criterion` cannot be fetched. This vendored replacement keeps the
//! benchmark-authoring surface the workspace uses — `Criterion`,
//! `benchmark_group`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `criterion_group!`/`criterion_main!` — and measures wall-clock time with
//! a simple adaptive loop: double the iteration count until one batch runs
//! long enough, then report mean time per iteration (and throughput when
//! declared). There is no statistical analysis, plotting, or baseline
//! comparison.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity, so benchmarked results are not
/// dead-code-eliminated.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-rate declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's display name (usually built from a parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Names a benchmark after one parameter value.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Names a benchmark `function/parameter`.
    pub fn new(function: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{function}/{p}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times one closure; handed to `bench_function` bodies.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm caches and let lazy initialisation happen off the clock.
        for _ in 0..2 {
            black_box(f());
        }
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(40) || iters >= 1 << 22 {
                self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters *= 2;
        }
    }
}

/// A named set of related benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs, enabling rate
    /// reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the per-batch measurement floor. Accepted for criterion
    /// API compatibility; this harness keeps its fixed adaptive floor.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Overrides the sample count. Accepted for criterion API
    /// compatibility; this harness derives its own iteration counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(" ({:.3e} elem/s)", n as f64 / (b.mean_ns * 1e-9))
            }
            Throughput::Bytes(n) => {
                format!(" ({:.3e} B/s)", n as f64 / (b.mean_ns * 1e-9))
            }
        });
        println!("{}/{}: {:.1} ns/iter{}", self.name, id.0, b.mean_ns, rate.unwrap_or_default());
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Ends the group (no-op; kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Entry point handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs one stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup { criterion: self, name: "bench".to_string(), throughput: None };
        g.bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench binary. CLI arguments
/// (e.g. cargo's `--bench`) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let _args: Vec<String> = std::env::args().collect();
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::from_parameter("sum"), |b| {
            b.iter(|| (0u64..10).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_measures() {
        let mut c = Criterion::default();
        quick_bench(&mut c);
        assert_eq!(c.benchmarks_run, 1);
    }
}
