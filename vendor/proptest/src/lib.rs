//! Offline stand-in for `proptest`.
//!
//! The build environment for this repository has no network access, so the
//! real `proptest` cannot be fetched. This vendored replacement keeps the
//! surface the workspace's property tests use — `proptest!`,
//! `Strategy`/`prop_map`/`prop_filter_map`, `prop::collection::vec`,
//! `prop::sample::select`, `prop_oneof!`, `any`, `prop_assert!`/
//! `prop_assert_eq!` — backed by a deterministic seeded RNG.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its case index and the
//!   assertion message, not a minimised input.
//! - **Deterministic seeding.** The RNG seed is derived from the test's
//!   module path and name, so runs are reproducible without
//!   `proptest-regressions` files (which are ignored).

#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of one type.
    ///
    /// Unlike real proptest there is no value tree or shrinking: a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Maps generated values through `f`, rejecting (and retrying)
        /// when `f` returns `None`. `reason` labels exhaustion panics.
        fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap { inner: self, reason, f }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Strategy that always yields clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S, O, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            // Retry locally instead of rejecting the whole test case.
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map exhausted retries: {}", self.reason);
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for "default strategy of a type".

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary_value(rng: &mut StdRng) -> u32 {
            rng.gen()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary_value(rng: &mut StdRng) -> u64 {
            rng.gen()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary_value(rng: &mut StdRng) -> u8 {
            (rng.gen::<u32>() & 0xff) as u8
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The full-domain strategy for `T` (`any::<bool>()`, `any::<u64>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A length specification: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<T>` with per-element strategy `S`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample::select`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// Chooses uniformly from `options`; panics if empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }
}

pub mod test_runner {
    //! The deterministic case-loop driver behind `proptest!`.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config that runs `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The input was rejected (does not count against the property).
        Reject(String),
    }

    impl TestCaseError {
        /// A property violation with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An input rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// `Result` alias used by `proptest!` bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn seed_for(name: &str) -> u64 {
        // FNV-1a: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `test` against `config.cases` generated inputs. Panics on the
    /// first failing case (no shrinking).
    pub fn run_proptest<S, F>(config: &ProptestConfig, name: &str, strategy: S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let mut rng = StdRng::seed_from_u64(seed_for(name));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            let value = strategy.generate(&mut rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(rejected < 65_536, "{name}: too many rejected inputs ({rejected})");
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed at case {passed}: {msg}")
                }
            }
        }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_proptest(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    ($($strat,)+),
                    |($($pat,)+)| -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body; on failure returns a
/// [`test_runner::TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub use arbitrary::any;

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    pub mod prop {
        //! Module-style access (`prop::collection`, `prop::sample`).
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuple_patterns_destructure((a, b) in (0u32..10, 10u32..20), v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!(a < 10 && (10..20).contains(&b));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn oneof_and_select_cover_options(
            pick in prop_oneof![(0u32..1).prop_map(|_| "a"), (0u32..1).prop_map(|_| "b")],
            sel in prop::sample::select(vec![2u32, 4, 8]),
        ) {
            prop_assert!(pick == "a" || pick == "b");
            prop_assert!([2, 4, 8].contains(&sel));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strat = (0u64..1000, 0.0f64..1.0);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }

    #[test]
    fn filter_map_retries_until_accepted() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let evens = (0u64..100).prop_filter_map("even", |x| (x % 2 == 0).then_some(x));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(evens.generate(&mut rng) % 2, 0);
        }
    }
}
