//! # two-level-cache
//!
//! A from-scratch reproduction of Norman P. Jouppi and Steven J.E.
//! Wilton, *Tradeoffs in Two-Level On-Chip Caching* (DEC WRL Research
//! Report 93/3, October 1993; ISCA 1994) — the paper that introduced
//! **two-level exclusive caching**.
//!
//! This facade crate re-exports the four substrates plus the study layer:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`trace`] | `tlc-trace` | synthetic SPEC'89-like workload generators |
//! | [`cache`] | `tlc-cache` | cache hierarchy simulator (single, conventional, exclusive, victim) |
//! | [`area`]  | `tlc-area`  | Mulder rbe area model |
//! | [`timing`]| `tlc-timing`| Wilton–Jouppi access/cycle-time model (proto-CACTI) |
//! | [`study`] | `tlc-core`  | TPI model, configuration space, envelopes, runners |
//!
//! ## Quick start
//!
//! ```
//! use two_level_cache::area::AreaModel;
//! use two_level_cache::study::{evaluate, L2Policy, MachineConfig, SimBudget};
//! use two_level_cache::timing::TimingModel;
//! use two_level_cache::trace::spec::SpecBenchmark;
//!
//! let timing = TimingModel::paper();
//! let area = AreaModel::new();
//! let config = MachineConfig::two_level(8, 64, 4, L2Policy::Exclusive, 50.0);
//! let point = evaluate(&config, SpecBenchmark::Li, SimBudget::quick(), &timing, &area);
//! println!("{}: {:.2} ns/instruction on {:.0} rbe", point.label, point.tpi_ns, point.area_rbe);
//! assert!(point.tpi_ns > 0.0);
//! ```
//!
//! See `README.md` for an overview, `DESIGN.md` for the system inventory
//! and the substitutions made for unobtainable 1993 artifacts, and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every figure.

#![warn(missing_docs)]

/// Synthetic memory-reference traces (`tlc-trace`).
pub use tlc_trace as trace;

/// Cache hierarchy simulator (`tlc-cache`).
pub use tlc_cache as cache;

/// Register-bit-equivalent area model (`tlc-area`).
pub use tlc_area as area;

/// SRAM access/cycle-time model (`tlc-timing`).
pub use tlc_timing as timing;

/// The assembled study: TPI, configuration space, envelopes (`tlc-core`).
pub use tlc_core as study;
