#!/usr/bin/env python3
"""Validate a tlc JSON report document.

Independent (non-Rust) check used by CI after the manifest and audit
smoke runs: verifies field presence, types, and the arithmetic
invariants the producer guarantees. Dispatches on the document's
``schema`` field — ``tlc-run-manifest/2`` (sweep instrumentation
manifests) and ``tlc-audit-report/1`` (differential-audit reports) are
understood — plus Chrome trace-event documents (a top-level
``traceEvents`` array, as written by ``tlc sweep --trace-out``).
Anything else is rejected with a clear message naming the schemas this
validator speaks. Exits non-zero on the first violation.

Usage: validate_manifest.py <report.json>
"""

import json
import sys

SCHEMA = "tlc-run-manifest/2"
AUDIT_SCHEMA = "tlc-audit-report/1"

AUDIT_FIELDS = {
    "schema": str,
    "seed": int,
    "requested_seconds": (int, float),
    "elapsed_seconds": (int, float),
    "cases": int,
    "engines": list,
    "checks": list,
    "divergences": list,
}

TOP_FIELDS = {
    "schema": str,
    "command": str,
    "benchmark": str,
    "engine": str,
    "threads": int,
    "configs": int,
    "config_space_hash": str,
    "wall_s": (int, float),
    "instrumentation": bool,
    "counters": list,
    "histograms": list,
    "memory": dict,
    "spans_dropped": int,
    "spans": list,
    "events": list,
}

SPAN_FIELDS = {
    "name": str,
    "count": int,
    "wall_ns": int,
    "cpu_ns": int,
    "threads": int,
    "items": int,
    "children": list,
}

HIST_FIELDS = {
    "name": str,
    "count": int,
    "sum": int,
    "max": int,
    "p50": int,
    "p90": int,
    "p99": int,
    "buckets": list,
}

MEMORY_FIELDS = {
    "peak_rss_bytes": int,
    "current_rss_bytes": int,
    "arena_bytes": int,
    "event_buffer_bytes": int,
}


def fail(msg):
    print(f"validate_manifest: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_fields(doc, fields, what):
    for field, ty in fields.items():
        if field not in doc:
            fail(f"{what}: missing field {field!r}")
        if not isinstance(doc[field], ty):
            fail(f"{what}.{field}: expected {ty}, got {type(doc[field])}")


def check_span(node, path):
    check_fields(node, SPAN_FIELDS, f"span {path}")
    for child in node["children"]:
        check_span(child, f"{path}/{child.get('name', '?')}")


def check_histogram(h):
    name = h.get("name", "?")
    check_fields(h, HIST_FIELDS, f"histogram {name}")
    bucket_total = 0
    for b in h["buckets"]:
        for field in ("index", "floor", "count"):
            if not isinstance(b.get(field), int):
                fail(f"histogram {name}: malformed bucket {b!r}")
        bucket_total += b["count"]
    if bucket_total != h["count"]:
        fail(
            f"histogram {name}: bucket counts sum to {bucket_total}, "
            f"recorded count is {h['count']}"
        )
    if h["count"] > 0:
        if not h["p50"] <= h["p90"] <= h["p99"] <= h["max"]:
            fail(
                f"histogram {name}: quantiles not monotone "
                f"(p50={h['p50']} p90={h['p90']} p99={h['p99']} max={h['max']})"
            )
        if h["sum"] < h["max"]:
            fail(f"histogram {name}: sum ({h['sum']}) < max ({h['max']})")


def check_chrome_trace(doc):
    """Well-formedness of a ``--trace-out`` Chrome trace-event document:
    the subset Perfetto/chrome://tracing needs to render the timeline."""
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"traceEvents: expected list, got {type(events)}")
    complete, metadata = 0, 0
    tids_named = set()
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"traceEvents[{i}]: expected object, got {type(e)}")
        ph = e.get("ph")
        if ph not in ("X", "M"):
            fail(f"traceEvents[{i}]: unknown phase {ph!r} (want 'X' or 'M')")
        if not isinstance(e.get("pid"), int) or not isinstance(e.get("tid"), int):
            fail(f"traceEvents[{i}]: pid/tid must be integers: {e!r}")
        if not isinstance(e.get("name"), str):
            fail(f"traceEvents[{i}]: missing string name: {e!r}")
        if ph == "M":
            metadata += 1
            if e["name"] != "thread_name":
                fail(f"traceEvents[{i}]: unexpected metadata record {e['name']!r}")
            tids_named.add(e["tid"])
        else:
            complete += 1
            for field in ("ts", "dur"):
                if not isinstance(e.get(field), (int, float)):
                    fail(f"traceEvents[{i}].{field}: expected number: {e!r}")
            if e["dur"] < 0 or e["ts"] < 0:
                fail(f"traceEvents[{i}]: negative ts/dur: {e!r}")
            if not isinstance(e.get("cat"), str):
                fail(f"traceEvents[{i}]: missing category: {e!r}")
            if e["tid"] not in tids_named:
                fail(f"traceEvents[{i}]: tid {e['tid']} has no thread_name metadata")
    print(
        f"validate_manifest: OK (chrome trace, {complete} spans on "
        f"{len(tids_named)} named threads, {metadata} metadata records)"
    )


def check_audit_report(doc):
    check_fields(doc, AUDIT_FIELDS, "audit report")
    if doc["cases"] < 1:
        fail("audit ran zero cases")
    if doc["elapsed_seconds"] < 0:
        fail("negative elapsed_seconds")
    engines = doc["engines"]
    expected = ["streaming", "dyn", "arena", "filtered", "family", "predict"]
    if sorted(engines) != sorted(expected):
        fail(f"unexpected engine list {engines!r}")

    total_div = 0
    names = set()
    for c in doc["checks"]:
        name = c.get("name")
        if not isinstance(name, str):
            fail(f"malformed check entry {c!r}")
        if name in names:
            fail(f"duplicate check {name!r}")
        names.add(name)
        runs, div = c.get("runs"), c.get("divergences")
        if not isinstance(runs, int) or not isinstance(div, int):
            fail(f"check {name!r}: runs/divergences must be integers")
        if div > runs:
            fail(f"check {name!r}: {div} divergences out of {runs} runs")
        total_div += div
    if total_div != len(doc["divergences"]):
        fail(
            f"check tallies count {total_div} divergences but the report "
            f"records {len(doc['divergences'])}"
        )
    for d in doc["divergences"]:
        for field in ("case_index", "check", "config", "workload", "detail"):
            if field not in d:
                fail(f"divergence record missing field {field!r}: {d!r}")
        if d["check"] not in names:
            fail(f"divergence cites unknown check {d['check']!r}")

    verdict = "clean" if not doc["divergences"] else f"{total_div} DIVERGENCES"
    print(
        f"validate_manifest: OK (audit seed {doc['seed']:#x}, "
        f"{doc['cases']} cases, {len(doc['checks'])} checks, {verdict})"
    )


def check_manifest(doc):
    check_fields(doc, TOP_FIELDS, "manifest")

    counters = {}
    for c in doc["counters"]:
        if not isinstance(c.get("name"), str) or not isinstance(c.get("value"), int):
            fail(f"malformed counter entry {c!r}")
        if c["name"] in counters:
            fail(f"duplicate counter {c['name']!r}")
        counters[c["name"]] = c["value"]

    hist_names = set()
    populated_hists = 0
    for h in doc["histograms"]:
        check_histogram(h)
        if h["name"] in hist_names:
            fail(f"duplicate histogram {h['name']!r}")
        hist_names.add(h["name"])
        if h["count"] > 0:
            populated_hists += 1

    memory = doc["memory"]
    check_fields(memory, MEMORY_FIELDS, "memory")
    peak, current = memory["peak_rss_bytes"], memory["current_rss_bytes"]
    if peak > 0 and current > 0 and peak < current:
        fail(f"memory: peak_rss_bytes ({peak}) < current_rss_bytes ({current})")

    if doc["spans_dropped"] < 0:
        fail("negative spans_dropped")

    for node in doc["spans"]:
        check_span(node, node.get("name", "?"))

    if not doc["instrumentation"]:
        # A no-op build legitimately reports all zeros; structure was
        # the only thing to check.
        print("validate_manifest: OK (uninstrumented build, structure only)")
        return

    def counter(name):
        if name not in counters:
            fail(f"missing counter {name!r}")
        return counters[name]

    decoded = counter("filter.events_decoded")
    l1_hits = counter("filter.l1_hits")
    l1_misses = counter("filter.l1_misses")
    if l1_hits + l1_misses != decoded:
        fail(
            f"filter.l1_hits ({l1_hits}) + filter.l1_misses ({l1_misses}) "
            f"!= filter.events_decoded ({decoded})"
        )

    probes = counter("l2.probes")
    l2_hits = counter("l2.hits")
    l2_misses = counter("l2.misses")
    if l2_hits + l2_misses != probes:
        fail(f"l2.hits ({l2_hits}) + l2.misses ({l2_misses}) != l2.probes ({probes})")

    # Block-liveness accounting: every L2 fill's generation ends exactly
    # once, classified as dead-on-arrival (no demand hit before
    # departure) or live; multi-hit generations are a subset of live.
    fills = counter("l2.fills")
    dead = counter("l2.dead_on_arrival")
    live = counter("l2.live_fills")
    multi = counter("l2.multi_hit")
    if dead + live != fills:
        fail(
            f"l2.dead_on_arrival ({dead}) + l2.live_fills ({live}) "
            f"!= l2.fills ({fills})"
        )
    if multi > live:
        fail(f"l2.multi_hit ({multi}) > l2.live_fills ({live})")

    if doc["command"] == "sweep":
        done = counter("runner.configs_completed")
        phases = counters.get("sample.phases", 0)
        if phases > 0:
            # Sampled sweep: every interval is either represented by a
            # phase or skipped, and each configuration completes once
            # per phase.
            intervals = counters.get("sample.intervals", 0)
            skipped = counters.get("sample.intervals_skipped", 0)
            if phases + skipped != intervals:
                fail(
                    f"sample.phases ({phases}) + sample.intervals_skipped "
                    f"({skipped}) != sample.intervals ({intervals})"
                )
            if counters.get("sample.events_replayed", 0) == 0:
                fail("sampled sweep replayed no events")
            expected = doc["configs"] * phases
        else:
            expected = doc["configs"]
        if done != expected:
            fail(
                f"runner.configs_completed ({done}) != configs × phases "
                f"({doc['configs']} × {max(phases, 1)})"
            )
        if counter("trace.instructions") == 0:
            fail("instrumented sweep captured no trace instructions")
        if memory["peak_rss_bytes"] == 0:
            fail("instrumented sweep recorded no peak RSS")
        if doc["engine"] == "predict":
            # Every design point is either answered analytically or
            # replayed through a fallback — nothing may fall through.
            predicted = counter("predict.configs_predicted")
            replayed = counter("predict.configs_replayed")
            if predicted + replayed != doc["configs"]:
                fail(
                    f"predict.configs_predicted ({predicted}) + "
                    f"predict.configs_replayed ({replayed}) != configs "
                    f"({doc['configs']})"
                )
            if predicted > 0 and counter("predict.groups_profiled") == 0:
                fail("points were predicted but no L1 group was profiled")

    sampled = ""
    if doc["command"] == "sweep" and counters.get("sample.phases", 0) > 0:
        sampled = (
            f", sampled {counters['sample.phases']}/"
            f"{counters.get('sample.intervals', 0)} intervals"
        )
    print(
        f"validate_manifest: OK ({doc['command']} {doc['benchmark']}, "
        f"engine={doc['engine']}, {doc['configs']} configs, "
        f"{decoded} events decoded, {probes} L2 probes, "
        f"{populated_hists} populated histograms{sampled})"
    )


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_manifest.py <report.json>")
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    if not isinstance(doc, dict):
        fail(f"expected a JSON object, got {type(doc)}")

    # A --trace-out timeline has no schema tag of its own; the
    # traceEvents array is the Chrome trace-event format's signature.
    if "schema" not in doc and "traceEvents" in doc:
        check_chrome_trace(doc)
        return

    schema = doc.get("schema")
    if schema == AUDIT_SCHEMA:
        check_audit_report(doc)
    elif schema == SCHEMA:
        check_manifest(doc)
    else:
        fail(
            f"unknown schema {schema!r}: this validator understands "
            f"{SCHEMA!r}, {AUDIT_SCHEMA!r}, and Chrome trace-event "
            f"documents (a top-level 'traceEvents' array)"
        )


if __name__ == "__main__":
    main()
