#!/usr/bin/env python3
"""Validate a tlc JSON report document.

Independent (non-Rust) check used by CI after the manifest and audit
smoke runs: verifies field presence, types, and the arithmetic
invariants the producer guarantees. Dispatches on the document's
``schema`` field — ``tlc-run-manifest/1`` (sweep instrumentation
manifests) and ``tlc-audit-report/1`` (differential-audit reports) are
understood. Exits non-zero with a message on the first violation.

Usage: validate_manifest.py <report.json>
"""

import json
import sys

SCHEMA = "tlc-run-manifest/1"
AUDIT_SCHEMA = "tlc-audit-report/1"

AUDIT_FIELDS = {
    "schema": str,
    "seed": int,
    "requested_seconds": (int, float),
    "elapsed_seconds": (int, float),
    "cases": int,
    "engines": list,
    "checks": list,
    "divergences": list,
}

TOP_FIELDS = {
    "schema": str,
    "command": str,
    "benchmark": str,
    "engine": str,
    "threads": int,
    "configs": int,
    "config_space_hash": str,
    "wall_s": (int, float),
    "instrumentation": bool,
    "counters": list,
    "spans": list,
    "events": list,
}

SPAN_FIELDS = {
    "name": str,
    "count": int,
    "wall_ns": int,
    "cpu_ns": int,
    "threads": int,
    "items": int,
    "children": list,
}


def fail(msg):
    print(f"validate_manifest: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_span(node, path):
    for field, ty in SPAN_FIELDS.items():
        if field not in node:
            fail(f"span {path}: missing field {field!r}")
        if not isinstance(node[field], ty):
            fail(f"span {path}.{field}: expected {ty}, got {type(node[field])}")
    for child in node["children"]:
        check_span(child, f"{path}/{child.get('name', '?')}")


def check_audit_report(doc):
    for field, ty in AUDIT_FIELDS.items():
        if field not in doc:
            fail(f"missing field {field!r}")
        if not isinstance(doc[field], ty):
            fail(f"field {field!r}: expected {ty}, got {type(doc[field])}")
    if doc["cases"] < 1:
        fail("audit ran zero cases")
    if doc["elapsed_seconds"] < 0:
        fail("negative elapsed_seconds")
    engines = doc["engines"]
    expected = ["streaming", "dyn", "arena", "filtered", "family", "predict"]
    if sorted(engines) != sorted(expected):
        fail(f"unexpected engine list {engines!r}")

    total_div = 0
    names = set()
    for c in doc["checks"]:
        name = c.get("name")
        if not isinstance(name, str):
            fail(f"malformed check entry {c!r}")
        if name in names:
            fail(f"duplicate check {name!r}")
        names.add(name)
        runs, div = c.get("runs"), c.get("divergences")
        if not isinstance(runs, int) or not isinstance(div, int):
            fail(f"check {name!r}: runs/divergences must be integers")
        if div > runs:
            fail(f"check {name!r}: {div} divergences out of {runs} runs")
        total_div += div
    if total_div != len(doc["divergences"]):
        fail(
            f"check tallies count {total_div} divergences but the report "
            f"records {len(doc['divergences'])}"
        )
    for d in doc["divergences"]:
        for field in ("case_index", "check", "config", "workload", "detail"):
            if field not in d:
                fail(f"divergence record missing field {field!r}: {d!r}")
        if d["check"] not in names:
            fail(f"divergence cites unknown check {d['check']!r}")

    verdict = "clean" if not doc["divergences"] else f"{total_div} DIVERGENCES"
    print(
        f"validate_manifest: OK (audit seed {doc['seed']:#x}, "
        f"{doc['cases']} cases, {len(doc['checks'])} checks, {verdict})"
    )


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_manifest.py <report.json>")
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    if doc.get("schema") == AUDIT_SCHEMA:
        check_audit_report(doc)
        return

    for field, ty in TOP_FIELDS.items():
        if field not in doc:
            fail(f"missing field {field!r}")
        if not isinstance(doc[field], ty):
            fail(f"field {field!r}: expected {ty}, got {type(doc[field])}")
    if doc["schema"] != SCHEMA:
        fail(f"schema {doc['schema']!r}, expected {SCHEMA!r}")

    counters = {}
    for c in doc["counters"]:
        if not isinstance(c.get("name"), str) or not isinstance(c.get("value"), int):
            fail(f"malformed counter entry {c!r}")
        if c["name"] in counters:
            fail(f"duplicate counter {c['name']!r}")
        counters[c["name"]] = c["value"]

    for node in doc["spans"]:
        check_span(node, node.get("name", "?"))

    if not doc["instrumentation"]:
        # A no-op build legitimately reports all zeros; structure was
        # the only thing to check.
        print("validate_manifest: OK (uninstrumented build, structure only)")
        return

    def counter(name):
        if name not in counters:
            fail(f"missing counter {name!r}")
        return counters[name]

    decoded = counter("filter.events_decoded")
    l1_hits = counter("filter.l1_hits")
    l1_misses = counter("filter.l1_misses")
    if l1_hits + l1_misses != decoded:
        fail(
            f"filter.l1_hits ({l1_hits}) + filter.l1_misses ({l1_misses}) "
            f"!= filter.events_decoded ({decoded})"
        )

    probes = counter("l2.probes")
    l2_hits = counter("l2.hits")
    l2_misses = counter("l2.misses")
    if l2_hits + l2_misses != probes:
        fail(f"l2.hits ({l2_hits}) + l2.misses ({l2_misses}) != l2.probes ({probes})")

    if doc["command"] == "sweep":
        done = counter("runner.configs_completed")
        phases = counters.get("sample.phases", 0)
        if phases > 0:
            # Sampled sweep: every interval is either represented by a
            # phase or skipped, and each configuration completes once
            # per phase.
            intervals = counters.get("sample.intervals", 0)
            skipped = counters.get("sample.intervals_skipped", 0)
            if phases + skipped != intervals:
                fail(
                    f"sample.phases ({phases}) + sample.intervals_skipped "
                    f"({skipped}) != sample.intervals ({intervals})"
                )
            if counters.get("sample.events_replayed", 0) == 0:
                fail("sampled sweep replayed no events")
            expected = doc["configs"] * phases
        else:
            expected = doc["configs"]
        if done != expected:
            fail(
                f"runner.configs_completed ({done}) != configs × phases "
                f"({doc['configs']} × {max(phases, 1)})"
            )
        if counter("trace.instructions") == 0:
            fail("instrumented sweep captured no trace instructions")
        if doc["engine"] == "predict":
            # Every design point is either answered analytically or
            # replayed through a fallback — nothing may fall through.
            predicted = counter("predict.configs_predicted")
            replayed = counter("predict.configs_replayed")
            if predicted + replayed != doc["configs"]:
                fail(
                    f"predict.configs_predicted ({predicted}) + "
                    f"predict.configs_replayed ({replayed}) != configs "
                    f"({doc['configs']})"
                )
            if predicted > 0 and counter("predict.groups_profiled") == 0:
                fail("points were predicted but no L1 group was profiled")

    sampled = ""
    if doc["command"] == "sweep" and counters.get("sample.phases", 0) > 0:
        sampled = (
            f", sampled {counters['sample.phases']}/"
            f"{counters.get('sample.intervals', 0)} intervals"
        )
    print(
        f"validate_manifest: OK ({doc['command']} {doc['benchmark']}, "
        f"engine={doc['engine']}, {doc['configs']} configs, "
        f"{decoded} events decoded, {probes} L2 probes{sampled})"
    )


if __name__ == "__main__":
    main()
