//! Integration tests of the paper's envelope-level claims, run at a
//! reduced simulation budget. Each test encodes one conclusion from the
//! paper's §3–§8; EXPERIMENTS.md records the same checks at full budget.

use two_level_cache::area::{AreaModel, CellKind};
use two_level_cache::study::configspace::{full_space, single_level_configs, SpaceOptions};
use two_level_cache::study::envelope::{envelope_at, mean_improvement};
use two_level_cache::study::report::envelope_of;
use two_level_cache::study::runner::sweep;
use two_level_cache::study::{DesignPoint, L2Policy, SimBudget};
use two_level_cache::timing::TimingModel;
use two_level_cache::trace::spec::SpecBenchmark;

fn budget() -> SimBudget {
    SimBudget { instructions: 250_000, warmup_instructions: 120_000 }
}

fn run_space(opts: &SpaceOptions, b: SpecBenchmark) -> Vec<DesignPoint> {
    let timing = TimingModel::paper();
    let area = AreaModel::new();
    sweep(&full_space(opts), b, budget(), &timing, &area)
}

fn run_singles(opts: &SpaceOptions, b: SpecBenchmark) -> Vec<DesignPoint> {
    let timing = TimingModel::paper();
    let area = AreaModel::new();
    sweep(&single_level_configs(opts), b, budget(), &timing, &area)
}

#[test]
fn single_level_tpi_minimum_is_interior() {
    // §3: every workload's single-level TPI has a minimum between 8KB and
    // 128KB — neither the smallest nor the largest cache wins.
    for b in SpecBenchmark::ALL {
        let pts = run_singles(&SpaceOptions::baseline(), b);
        let best = pts
            .iter()
            .min_by(|x, y| x.tpi_ns.partial_cmp(&y.tpi_ns).expect("no NaN"))
            .expect("nonempty");
        let kb = best.machine.l1_size_bytes / 1024;
        assert!((8..=128).contains(&kb), "{b}: minimum at {kb}KB, paper says 8KB–128KB");
    }
}

#[test]
fn fig5_singles_dominate_small_areas() {
    // §4: "single-level configurations tend to dominate the performance
    // envelope for areas below about 300,000 rbe's."
    let pts = run_space(&SpaceOptions::baseline(), SpecBenchmark::Gcc1);
    for e in envelope_of(&pts) {
        if e.area < 300_000.0 {
            assert!(
                pts[e.index].machine.l2.is_none(),
                "two-level {} on the small-area envelope at {:.0} rbe",
                pts[e.index].label,
                e.area
            );
        }
    }
}

#[test]
fn fig5_vs_fig17_longer_offchip_helps_two_level() {
    // §7: "for every workload, the 'distance' between the single-level
    // and two-level best-performance envelopes is larger when the
    // off-chip time is 200ns."
    let gap = |offchip: f64| {
        let opts = SpaceOptions { offchip_ns: offchip, ..SpaceOptions::baseline() };
        let pts = run_space(&opts, SpecBenchmark::Gcc1);
        let singles: Vec<DesignPoint> =
            pts.iter().filter(|p| p.machine.l2.is_none()).cloned().collect();
        mean_improvement(&envelope_of(&pts), &envelope_of(&singles))
    };
    let g50 = gap(50.0);
    let g200 = gap(200.0);
    assert!(
        g200 > g50,
        "two-level advantage must grow with off-chip time: 50ns {g50:.4}, 200ns {g200:.4}"
    );
}

#[test]
fn fig17_small_caches_pay_3x_at_200ns() {
    // §7: "A system with 1KB on-chip caches pays a penalty of about 3X in
    // run time, as compared to a machine with 50ns off-chip service
    // times."
    let p50 = run_singles(&SpaceOptions::baseline(), SpecBenchmark::Gcc1);
    let p200 = run_singles(
        &SpaceOptions { offchip_ns: 200.0, ..SpaceOptions::baseline() },
        SpecBenchmark::Gcc1,
    );
    let ratio_1k = p200[0].tpi_ns / p50[0].tpi_ns;
    assert!((2.0..4.5).contains(&ratio_1k), "1KB 200ns/50ns TPI ratio {ratio_1k:.2} (paper ~3x)");
    // Large two-level systems are much less affected.
    let last50 = p50.last().expect("nonempty").tpi_ns;
    let last200 = p200.last().expect("nonempty").tpi_ns;
    assert!(last200 / last50 < ratio_1k, "big caches must be hurt less by slow memory");
}

#[test]
fn exclusive_envelope_not_worse_than_conventional() {
    // §8: exclusive caching "was also found to improve the performance of
    // two-level on-chip caching."
    for b in [SpecBenchmark::Gcc1, SpecBenchmark::Li] {
        let conv = run_space(&SpaceOptions::baseline(), b);
        let excl = run_space(
            &SpaceOptions { l2_policy: L2Policy::Exclusive, ..SpaceOptions::baseline() },
            b,
        );
        let gain = mean_improvement(&envelope_of(&excl), &envelope_of(&conv));
        assert!(
            gain > -0.01,
            "{b}: exclusive envelope must not lose to conventional (gain {gain:.4})"
        );
    }
}

#[test]
fn exclusive_dm_l2_competitive_with_conventional_4way() {
    // §8: "for gcc1 the exclusive caching scheme with a direct-mapped
    // second-level cache performs about as well as a system that ... uses
    // a 4-way set-associative second-level cache."
    let conv4 = run_space(&SpaceOptions::baseline(), SpecBenchmark::Gcc1);
    let excl_dm = run_space(
        &SpaceOptions { l2_ways: 1, l2_policy: L2Policy::Exclusive, ..SpaceOptions::baseline() },
        SpecBenchmark::Gcc1,
    );
    // Compare the two envelopes where they overlap: within a few percent.
    let env_c = envelope_of(&conv4);
    let env_e = envelope_of(&excl_dm);
    let mut worst: f64 = 0.0;
    for p in &env_c {
        if let Some(tpi_e) = envelope_at(&env_e, p.area) {
            worst = worst.max((tpi_e / p.tpi - 1.0).abs());
        }
    }
    assert!(
        worst < 0.10,
        "exclusive-DM vs conventional-4way envelopes diverge by {:.1}%",
        worst * 100.0
    );
}

#[test]
fn dual_ported_crossover_exists() {
    // §6: "the base cell is preferred for small caches, while for larger
    // caches, the dual-ported cell gives a better performance for a fixed
    // area. The cross-over point ranges from 50,000 rbe's to 400,000
    // rbe's."
    let base = run_singles(&SpaceOptions::baseline(), SpecBenchmark::Espresso);
    let dual = run_singles(
        &SpaceOptions { l1_cell: CellKind::DualPorted, ..SpaceOptions::baseline() },
        SpecBenchmark::Espresso,
    );
    let env_base = envelope_of(&base);
    let env_dual = envelope_of(&dual);
    let crossover = env_dual
        .iter()
        .find(|p| envelope_at(&env_base, p.area).is_some_and(|t| p.tpi < t))
        .map(|p| p.area);
    let x = crossover.expect("dual-ported must overtake the base cell somewhere");
    assert!((30_000.0..2_000_000.0).contains(&x), "crossover at {x:.0} rbe is implausible");
}

#[test]
fn dual_ported_same_capacity_always_faster() {
    // §6: "Moving from a cache with single-ported cells to the
    // same-capacity cache with dual-ported cells, however, always
    // improves performance."
    let base = run_singles(&SpaceOptions::baseline(), SpecBenchmark::Gcc1);
    let dual = run_singles(
        &SpaceOptions { l1_cell: CellKind::DualPorted, ..SpaceOptions::baseline() },
        SpecBenchmark::Gcc1,
    );
    for (b, d) in base.iter().zip(&dual) {
        assert!(
            d.tpi_ns < b.tpi_ns,
            "{}: dual-ported {:.2} should beat single-ported {:.2} at equal capacity",
            b.label,
            d.tpi_ns,
            b.tpi_ns
        );
    }
}
