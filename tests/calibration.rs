//! Calibration anchors: the synthetic workloads must reproduce the
//! miss-rate facts the paper states about its SPEC'89 traces (see
//! DESIGN.md §2 for the substitution argument these tests guard).

use two_level_cache::cache::{Associativity, CacheConfig, MemorySystem, SingleLevel};
use two_level_cache::trace::spec::SpecBenchmark;

/// Overall L1 miss rate (per reference) of `benchmark` on split
/// direct-mapped caches of `kb` KB each.
fn miss_rate(benchmark: SpecBenchmark, kb: u64, instructions: u64) -> f64 {
    let mut sys =
        SingleLevel::new(CacheConfig::paper(kb * 1024, Associativity::Direct).expect("valid"));
    let mut w = benchmark.workload();
    // Warm up one fifth of the run.
    for _ in 0..instructions / 5 {
        let i = w.next_instruction();
        sys.access_instruction(&i);
    }
    sys.reset_stats();
    for _ in 0..instructions {
        let i = w.next_instruction();
        sys.access_instruction(&i);
    }
    sys.stats().l1_miss_rate()
}

const N: u64 = 400_000;

#[test]
fn espresso_low_miss_rate_at_32kb() {
    // Paper §3: espresso 0.0100 at 32KB.
    let m = miss_rate(SpecBenchmark::Espresso, 32, N);
    assert!((0.005..0.020).contains(&m), "espresso @32KB: {m} (paper 0.0100)");
}

#[test]
fn eqntott_low_miss_rate_at_32kb() {
    // Paper §3: eqntott 0.0149 at 32KB.
    let m = miss_rate(SpecBenchmark::Eqntott, 32, N);
    assert!((0.004..0.025).contains(&m), "eqntott @32KB: {m} (paper 0.0149)");
}

#[test]
fn tomcatv_high_and_flat() {
    // Paper §3: tomcatv 0.109 at 32KB, "the miss rate does not drop
    // appreciably as the cache size is increased" — while its Figure 8/20
    // envelopes still carry 16:64-style configurations, i.e. a residual
    // streaming component that only a couple of hundred KB captures. We
    // require a high 32KB rate, a still-high 128KB rate, and a far
    // smaller relative drop than fpppp's knee.
    let m32 = miss_rate(SpecBenchmark::Tomcatv, 32, N);
    assert!((0.08..0.16).contains(&m32), "tomcatv @32KB: {m32} (paper 0.109)");
    let m128 = miss_rate(SpecBenchmark::Tomcatv, 128, N);
    assert!(
        m128 > 0.6 * m32 && m128 > 0.06,
        "tomcatv must stay comparatively flat: 32KB {m32} vs 128KB {m128}"
    );
}

#[test]
fn miss_rates_decrease_with_cache_size() {
    for b in SpecBenchmark::ALL {
        let small = miss_rate(b, 2, N / 2);
        let large = miss_rate(b, 64, N / 2);
        assert!(large < small, "{b}: miss rate must fall with size (2KB {small}, 64KB {large})");
    }
}

#[test]
fn fpppp_has_huge_instruction_footprint() {
    // fpppp is famous for instruction working sets beyond 100KB: its miss
    // rate collapses only once the caches reach 32KB+.
    let m8 = miss_rate(SpecBenchmark::Fpppp, 8, N / 2);
    let m64 = miss_rate(SpecBenchmark::Fpppp, 64, N / 2);
    assert!(m8 > 0.15, "fpppp @8KB should still thrash: {m8}");
    assert!(m64 < 0.07, "fpppp @64KB should mostly fit: {m64}");
    assert!(m8 / m64 > 3.0, "fpppp needs a sharp knee: {m8} -> {m64}");
}

#[test]
fn workload_mix_matches_table1() {
    // The instruction/data reference mix must match Table 1 within Monte
    // Carlo noise.
    for b in SpecBenchmark::ALL {
        let mut w = b.workload();
        let n = 60_000;
        let data = (0..n).filter(|_| w.next_instruction().data.is_some()).count();
        let observed = data as f64 / n as f64;
        let expected = b.data_per_instr();
        assert!(
            (observed - expected).abs() < 0.015,
            "{b}: data/instr {observed:.4} vs Table 1 {expected:.4}"
        );
    }
}

#[test]
fn single_level_minimum_is_interior() {
    // §3: "All seven workloads exhibit a minimum TPI between 8KB and
    // 128KB." Verified at the TPI level by the envelope tests; here we
    // check the raw mechanism: the miss-rate knee is sharp enough that
    // 256KB never wins once cycle time is charged. We approximate by
    // asserting diminishing returns: the 128KB→256KB miss-rate gain is
    // small relative to the 8KB→16KB gain.
    for b in [SpecBenchmark::Gcc1, SpecBenchmark::Espresso, SpecBenchmark::Li] {
        let m8 = miss_rate(b, 8, N / 2);
        let m16 = miss_rate(b, 16, N / 2);
        let m128 = miss_rate(b, 128, N / 2);
        let m256 = miss_rate(b, 256, N / 2);
        let early_gain = m8 - m16;
        let late_gain = m128 - m256;
        assert!(
            late_gain < early_gain,
            "{b}: diminishing returns violated ({early_gain:.4} vs {late_gain:.4})"
        );
    }
}
