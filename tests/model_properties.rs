//! Property-based tests of the analytical models (timing, area,
//! envelope): structural invariants that must hold for every geometry.

use proptest::prelude::*;
use two_level_cache::area::{AreaModel, ArrayOrg, CacheGeometry, CellKind};
use two_level_cache::study::envelope::{best_envelope, envelope_at};
use two_level_cache::timing::TimingModel;

/// Strategy over the paper's cache geometries.
fn geometry() -> impl Strategy<Value = CacheGeometry> {
    (10u32..19, prop::sample::select(vec![1u32, 2, 4, 8])).prop_filter_map(
        "cache must hold >= ways lines",
        |(log_size, ways)| {
            let size = 1u64 << log_size;
            if size / 16 >= ways as u64 {
                Some(CacheGeometry::paper(size, ways))
            } else {
                None
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cycle_time_exceeds_access_time(geom in geometry()) {
        let m = TimingModel::paper();
        for cell in [CellKind::SinglePorted, CellKind::DualPorted] {
            let t = m.optimal(&geom, cell);
            prop_assert!(t.cycle_ns > t.access_ns, "{geom}: cycle {} <= access {}", t.cycle_ns, t.access_ns);
            prop_assert!(t.access_ns > 0.5 && t.cycle_ns < 20.0, "{geom}: implausible times");
        }
    }

    #[test]
    fn optimal_org_is_no_worse_than_unit(geom in geometry()) {
        let m = TimingModel::paper();
        let best = m.optimal(&geom, CellKind::SinglePorted).cycle_ns;
        let unit = m.analyze(&geom, &ArrayOrg::UNIT, CellKind::SinglePorted).cycle_ns();
        prop_assert!(best <= unit + 1e-9, "{geom}: search {best} worse than unit {unit}");
    }

    #[test]
    fn doubling_size_never_shrinks_optimal_cycle(
        log_size in 10u32..18,
        ways in prop::sample::select(vec![1u32, 4]),
    ) {
        let m = TimingModel::paper();
        let small = CacheGeometry::paper(1 << log_size, ways);
        let large = CacheGeometry::paper(1 << (log_size + 1), ways);
        let ts = m.optimal(&small, CellKind::SinglePorted).cycle_ns;
        let tl = m.optimal(&large, CellKind::SinglePorted).cycle_ns;
        prop_assert!(tl >= ts - 1e-9, "{small} {ts} -> {large} {tl}");
    }

    #[test]
    fn area_positive_and_core_dominated_for_large_caches(geom in geometry()) {
        let m = TimingModel::paper();
        let a = AreaModel::new();
        let org = m.optimal(&geom, CellKind::SinglePorted).org;
        let b = a.cache_area(&geom, &org, CellKind::SinglePorted);
        prop_assert!(b.total().value() > 0.0);
        prop_assert!(b.overhead_fraction() < 0.9, "{geom}: overhead {:.2}", b.overhead_fraction());
        // Core alone lower-bounds the total.
        let core = geom.data_bits() as f64 * 0.6;
        prop_assert!(b.total().value() >= core, "{geom}: total below data core");
    }

    #[test]
    fn dual_porting_exactly_doubles_area_at_fixed_org(geom in geometry()) {
        let a = AreaModel::new();
        let org = ArrayOrg::UNIT;
        let s = a.total_area(&geom, &org, CellKind::SinglePorted).value();
        let d = a.total_area(&geom, &org, CellKind::DualPorted).value();
        prop_assert!((d / s - 2.0).abs() < 1e-9, "{geom}: ratio {}", d / s);
    }

    #[test]
    fn envelope_is_strictly_decreasing_staircase(
        points in prop::collection::vec((1.0f64..1e7, 1.0f64..100.0), 0..60),
    ) {
        let env = best_envelope(&points);
        for w in env.windows(2) {
            prop_assert!(w[0].area < w[1].area);
            prop_assert!(w[0].tpi > w[1].tpi);
        }
        // Every input point is dominated by (or on) the envelope.
        for &(area, tpi) in &points {
            let e = envelope_at(&env, area).expect("a point exists at or below its own area");
            prop_assert!(e <= tpi + 1e-12);
        }
    }

    #[test]
    fn envelope_contains_global_minimum(
        points in prop::collection::vec((1.0f64..1e7, 1.0f64..100.0), 1..60),
    ) {
        let env = best_envelope(&points);
        let min_tpi = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let last = env.last().expect("nonempty input gives nonempty envelope");
        prop_assert!((last.tpi - min_tpi).abs() < 1e-12);
    }
}
