//! Arena-replay equivalence: the capture-once/replay-many sweep engine
//! must be observationally identical to the original generate-per-eval
//! pipeline — same `HierarchyStats`, same `tpi_ns`, bit for bit — for
//! every benchmark and every hierarchy organisation, regardless of how
//! the arena is chunked or how many worker threads replay it.
//!
//! These are the acceptance tests for the sweep engine's central claim:
//! the ≥3× speedup (see `crates/bench/benches/sweep_throughput.rs` and
//! `BENCH_sweep.json`) is a pure engine optimisation, not a change to
//! the simulated machine.

use tlc_area::AreaModel;
use tlc_core::experiment::{capture_benchmark, evaluate, evaluate_arena, evaluate_dyn, SimBudget};
use tlc_core::runner::sweep_arena_threads;
use tlc_core::{L2Policy, MachineConfig};
use tlc_timing::TimingModel;
use tlc_trace::spec::SpecBenchmark;
use tlc_trace::TraceArena;

const BUDGET: SimBudget = SimBudget { instructions: 12_000, warmup_instructions: 3_000 };

/// One configuration per `SystemKind` variant: single-level, conventional
/// two-level, and exclusive two-level.
fn hierarchy_kinds() -> [MachineConfig; 3] {
    [
        MachineConfig::single_level(4, 50.0),
        MachineConfig::two_level(4, 64, 4, L2Policy::Conventional, 50.0),
        MachineConfig::two_level(4, 64, 4, L2Policy::Exclusive, 50.0),
    ]
}

/// Every benchmark × every hierarchy kind: the arena replay and both
/// generator-driven engines (monomorphised and the legacy vtable path)
/// must agree on the entire `DesignPoint` — stats, `tpi_ns`, CPI, label.
#[test]
fn arena_replay_matches_generation_for_all_benchmarks_and_kinds() {
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    for benchmark in SpecBenchmark::ALL {
        let arena = capture_benchmark(benchmark, BUDGET);
        for cfg in hierarchy_kinds() {
            let generated = evaluate(&cfg, benchmark, BUDGET, &tm, &am);
            let replayed = evaluate_arena(&cfg, &arena, BUDGET, &tm, &am);
            assert_eq!(
                generated,
                replayed,
                "{} on {}: arena replay diverged from generation",
                benchmark.name(),
                cfg.label()
            );
            let legacy = evaluate_dyn(&cfg, benchmark, BUDGET, &tm, &am);
            assert_eq!(
                generated,
                legacy,
                "{} on {}: devirtualised engine diverged from the dyn path",
                benchmark.name(),
                cfg.label()
            );
        }
    }
}

/// Arena chunking is an allocation detail: replaying the same stream
/// through pathological (tiny, prime, huge) chunk sizes must not change
/// a single statistic.
#[test]
fn chunk_size_does_not_change_results() {
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    let len = BUDGET.warmup_instructions + BUDGET.instructions;
    let reference = capture_benchmark(SpecBenchmark::Li, BUDGET);
    let cfgs = hierarchy_kinds();
    let expected: Vec<_> =
        cfgs.iter().map(|c| evaluate_arena(c, &reference, BUDGET, &tm, &am)).collect();
    for chunk_len in [7usize, 64, 1 << 12, 1 << 20] {
        let arena = TraceArena::capture_chunked(&mut SpecBenchmark::Li.workload(), len, chunk_len);
        for (cfg, want) in cfgs.iter().zip(&expected) {
            let got = evaluate_arena(cfg, &arena, BUDGET, &tm, &am);
            assert_eq!(&got, want, "chunk_len={chunk_len} changed {}", cfg.label());
        }
    }
}

/// Thread fan-out is a scheduling detail: a sweep over a mixed
/// configuration list must return the same `DesignPoint`s in the same
/// order for any worker count.
#[test]
fn thread_count_does_not_change_design_points() {
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    let configs: Vec<MachineConfig> = hierarchy_kinds()
        .into_iter()
        .chain([
            MachineConfig::single_level(16, 50.0),
            MachineConfig::two_level(2, 32, 1, L2Policy::Exclusive, 50.0),
        ])
        .collect();
    let arena = capture_benchmark(SpecBenchmark::Eqntott, BUDGET);
    let serial = sweep_arena_threads(&configs, &arena, BUDGET, &tm, &am, 1);
    for threads in [2usize, 3, 8] {
        let parallel = sweep_arena_threads(&configs, &arena, BUDGET, &tm, &am, threads);
        assert_eq!(serial, parallel, "threads={threads} changed the sweep");
    }
}
