//! Arena-replay equivalence: the capture-once/replay-many sweep engine
//! must be observationally identical to the original generate-per-eval
//! pipeline — same `HierarchyStats`, same `tpi_ns`, bit for bit — for
//! every benchmark and every hierarchy organisation, regardless of how
//! the arena is chunked or how many worker threads replay it.
//!
//! These are the acceptance tests for the sweep engine's central claim:
//! the ≥3× speedup (see `crates/bench/benches/sweep_throughput.rs` and
//! `BENCH_sweep.json`) is a pure engine optimisation, not a change to
//! the simulated machine.

use proptest::prelude::*;
use tlc_area::AreaModel;
use tlc_cache::filter::{replay_conventional, replay_exclusive, MissStream};
use tlc_cache::filter_family::{replay_conventional_family, replay_exclusive_family};
use tlc_cache::{
    naive_replay_conventional, naive_replay_exclusive, Associativity, CacheConfig, L1FrontEnd,
    MemorySystem, ReplacementKind,
};
use tlc_core::experiment::{
    capture_benchmark, capture_miss_stream, evaluate, evaluate_arena, evaluate_dyn,
    evaluate_family, evaluate_filtered, SimBudget,
};
use tlc_core::runner::{sweep_arena_threads, sweep_filtered_arena_threads};
use tlc_core::{L2Policy, MachineConfig};
use tlc_timing::TimingModel;
use tlc_trace::spec::SpecBenchmark;
use tlc_trace::{AccessKind, Addr, LineAddr, MemRef, MissEvent, TraceArena, VictimLine};

const BUDGET: SimBudget = SimBudget { instructions: 12_000, warmup_instructions: 3_000 };

/// One configuration per `SystemKind` variant: single-level, conventional
/// two-level, and exclusive two-level.
fn hierarchy_kinds() -> [MachineConfig; 3] {
    [
        MachineConfig::single_level(4, 50.0),
        MachineConfig::two_level(4, 64, 4, L2Policy::Conventional, 50.0),
        MachineConfig::two_level(4, 64, 4, L2Policy::Exclusive, 50.0),
    ]
}

/// Every benchmark × every hierarchy kind: the arena replay and both
/// generator-driven engines (monomorphised and the legacy vtable path)
/// must agree on the entire `DesignPoint` — stats, `tpi_ns`, CPI, label.
#[test]
fn arena_replay_matches_generation_for_all_benchmarks_and_kinds() {
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    for benchmark in SpecBenchmark::ALL {
        let arena = capture_benchmark(benchmark, BUDGET);
        for cfg in hierarchy_kinds() {
            let generated = evaluate(&cfg, benchmark, BUDGET, &tm, &am);
            let replayed = evaluate_arena(&cfg, &arena, BUDGET, &tm, &am);
            assert_eq!(
                generated,
                replayed,
                "{} on {}: arena replay diverged from generation",
                benchmark.name(),
                cfg.label()
            );
            let legacy = evaluate_dyn(&cfg, benchmark, BUDGET, &tm, &am);
            assert_eq!(
                generated,
                legacy,
                "{} on {}: devirtualised engine diverged from the dyn path",
                benchmark.name(),
                cfg.label()
            );
        }
    }
}

/// Arena chunking is an allocation detail: replaying the same stream
/// through pathological (tiny, prime, huge) chunk sizes must not change
/// a single statistic.
#[test]
fn chunk_size_does_not_change_results() {
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    let len = BUDGET.warmup_instructions + BUDGET.instructions;
    let reference = capture_benchmark(SpecBenchmark::Li, BUDGET);
    let cfgs = hierarchy_kinds();
    let expected: Vec<_> =
        cfgs.iter().map(|c| evaluate_arena(c, &reference, BUDGET, &tm, &am)).collect();
    for chunk_len in [7usize, 64, 1 << 12, 1 << 20] {
        let arena = TraceArena::capture_chunked(&mut SpecBenchmark::Li.workload(), len, chunk_len);
        for (cfg, want) in cfgs.iter().zip(&expected) {
            let got = evaluate_arena(cfg, &arena, BUDGET, &tm, &am);
            assert_eq!(&got, want, "chunk_len={chunk_len} changed {}", cfg.label());
        }
    }
}

/// Miss-stream filtering equivalence: for every benchmark, every
/// hierarchy kind (single-level, conventional/inclusive-tending,
/// exclusive victim-swap) and several (L1, L2) geometry pairs, the
/// filtered engine — L1 simulated once per front-end, L2 replaying only
/// the captured events — must produce the same `DesignPoint` bit for bit
/// as both the arena engine and the legacy dyn engine.
#[test]
fn filtered_equivalence() {
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    for benchmark in SpecBenchmark::ALL {
        let arena = capture_benchmark(benchmark, BUDGET);
        for l1_kb in [2u64, 4] {
            let stream = capture_miss_stream(l1_kb * 1024, 16, &arena, BUDGET, usize::MAX)
                .expect("unbounded capture succeeds");
            let mut configs = vec![MachineConfig::single_level(l1_kb, 50.0)];
            for l2_kb in [8u64, 64] {
                for (ways, policy) in [
                    (4, L2Policy::Conventional),
                    (4, L2Policy::Exclusive),
                    (1, L2Policy::Exclusive),
                ] {
                    configs.push(MachineConfig::two_level(l1_kb, l2_kb, ways, policy, 50.0));
                }
            }
            for cfg in &configs {
                let filtered = evaluate_filtered(cfg, &stream, &tm, &am);
                let replayed = evaluate_arena(cfg, &arena, BUDGET, &tm, &am);
                assert_eq!(
                    filtered,
                    replayed,
                    "{} on {}: filtered engine diverged from arena replay",
                    benchmark.name(),
                    cfg.label()
                );
                let legacy = evaluate_dyn(cfg, benchmark, BUDGET, &tm, &am);
                assert_eq!(
                    filtered,
                    legacy,
                    "{} on {}: filtered engine diverged from the dyn engine",
                    benchmark.name(),
                    cfg.label()
                );
            }
        }
    }
}

/// Family-batched equivalence: for every benchmark, evaluating a whole
/// L2-size family in one pass over the miss stream must reproduce the
/// per-config filtered engine's `DesignPoint`s — stats and `tpi_ns` —
/// bit for bit, for single-level, conventional (set-associative and
/// direct-mapped fast path) and exclusive families alike.
#[test]
fn family_equivalence() {
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    for benchmark in SpecBenchmark::ALL {
        let arena = capture_benchmark(benchmark, BUDGET);
        for l1_kb in [2u64, 4] {
            let stream = capture_miss_stream(l1_kb * 1024, 16, &arena, BUDGET, usize::MAX)
                .expect("unbounded capture succeeds");
            let mut families: Vec<Vec<MachineConfig>> =
                vec![vec![MachineConfig::single_level(l1_kb, 50.0); 3]];
            for (ways, policy) in [
                (4, L2Policy::Conventional),
                (1, L2Policy::Conventional),
                (4, L2Policy::Exclusive),
                (1, L2Policy::Exclusive),
            ] {
                families.push(
                    [8u64, 64, 16]
                        .iter()
                        .map(|&l2_kb| MachineConfig::two_level(l1_kb, l2_kb, ways, policy, 50.0))
                        .collect(),
                );
            }
            for family in &families {
                let batched = evaluate_family(family, &stream, &tm, &am);
                for (cfg, got) in family.iter().zip(&batched) {
                    let want = evaluate_filtered(cfg, &stream, &tm, &am);
                    assert_eq!(
                        &want,
                        got,
                        "{} on {}: family-batched engine diverged from filtered",
                        benchmark.name(),
                        cfg.label()
                    );
                }
            }
        }
    }
}

/// Every replacement policy through every L2 engine: for each
/// [`ReplacementKind`] (including SRRIP) and both set-associative and
/// direct-mapped geometries, the family-batched engine must reproduce
/// the scalar filtered engine bit for bit, and both must match the
/// hand-verifiable naive oracle — on conventional and exclusive
/// hierarchies alike.
#[test]
fn replacement_policies_agree_family_scalar_and_oracle() {
    for benchmark in [SpecBenchmark::Li, SpecBenchmark::Doduc] {
        let arena = capture_benchmark(benchmark, BUDGET);
        let stream = capture_miss_stream(2 * 1024, 16, &arena, BUDGET, usize::MAX)
            .expect("unbounded capture succeeds");
        for repl in ReplacementKind::ALL {
            for assoc in [Associativity::Direct, Associativity::SetAssoc(4)] {
                let cfgs: Vec<CacheConfig> = [8u64, 16, 64]
                    .iter()
                    .map(|&kb| CacheConfig::new(kb * 1024, 16, assoc, repl).expect("valid L2"))
                    .collect();
                let conv = replay_conventional_family(&cfgs, &stream);
                let excl = replay_exclusive_family(&cfgs, &stream);
                for (cfg, (fam_conv, fam_excl)) in cfgs.iter().zip(conv.iter().zip(&excl)) {
                    let label = format!("{benchmark:?} {repl} {assoc:?} {}B", cfg.size_bytes());
                    let scalar = replay_conventional(*cfg, &stream);
                    assert_eq!(&scalar, fam_conv, "{label}: conventional family vs scalar");
                    let oracle =
                        naive_replay_conventional(cfg.size_bytes(), cfg.ways(), repl, &stream);
                    assert_eq!(scalar, oracle, "{label}: conventional engine vs naive oracle");
                    let scalar = replay_exclusive(*cfg, &stream);
                    assert_eq!(&scalar, fam_excl, "{label}: exclusive family vs scalar");
                    let oracle =
                        naive_replay_exclusive(cfg.size_bytes(), cfg.ways(), repl, &stream);
                    assert_eq!(scalar, oracle, "{label}: exclusive engine vs naive oracle");
                }
            }
        }
    }
}

/// Non-baseline policies survive the full `DesignPoint` pipeline: a
/// machine configured with FIFO, tree-PLRU, or SRRIP L2 replacement
/// must produce identical points from the generator-driven, arena,
/// filtered, and family-batched engines — and single-level machines
/// (where the knob is inert) ride along in the same mixed family list.
#[test]
fn replacement_policies_agree_across_design_point_engines() {
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    let benchmark = SpecBenchmark::Eqntott;
    let arena = capture_benchmark(benchmark, BUDGET);
    let stream = capture_miss_stream(4 * 1024, 16, &arena, BUDGET, usize::MAX)
        .expect("unbounded capture succeeds");
    let with_repl = |mut cfg: MachineConfig, repl: ReplacementKind| {
        if let Some(spec) = cfg.l2.as_mut() {
            spec.repl = repl;
        }
        cfg
    };
    for repl in [ReplacementKind::Fifo, ReplacementKind::TreePlru, ReplacementKind::Srrip] {
        for base in hierarchy_kinds() {
            let family = vec![with_repl(base, repl), with_repl(base, repl), with_repl(base, repl)];
            let batched = evaluate_family(&family, &stream, &tm, &am);
            for (cfg, got) in family.iter().zip(&batched) {
                let filtered = evaluate_filtered(cfg, &stream, &tm, &am);
                assert_eq!(
                    &filtered,
                    got,
                    "{repl} on {}: family-batched engine diverged from filtered",
                    cfg.label()
                );
                let replayed = evaluate_arena(cfg, &arena, BUDGET, &tm, &am);
                assert_eq!(
                    filtered,
                    replayed,
                    "{repl} on {}: filtered engine diverged from arena replay",
                    cfg.label()
                );
                let generated = evaluate(cfg, benchmark, BUDGET, &tm, &am);
                assert_eq!(
                    generated,
                    replayed,
                    "{repl} on {}: arena replay diverged from generation",
                    cfg.label()
                );
            }
        }
    }
}

/// The filtered sweep is a drop-in replacement for the arena sweep:
/// same mixed configuration list, any thread count, identical output.
#[test]
fn filtered_sweep_matches_arena_sweep_at_any_thread_count() {
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    let configs: Vec<MachineConfig> = hierarchy_kinds()
        .into_iter()
        .chain([
            MachineConfig::two_level(4, 32, 4, L2Policy::Conventional, 50.0),
            MachineConfig::two_level(4, 16, 1, L2Policy::Exclusive, 200.0),
            MachineConfig::single_level(16, 50.0),
        ])
        .collect();
    let arena = capture_benchmark(SpecBenchmark::Doduc, BUDGET);
    let reference = sweep_arena_threads(&configs, &arena, BUDGET, &tm, &am, 1);
    for threads in [1usize, 2, 5] {
        let filtered = sweep_filtered_arena_threads(&configs, &arena, BUDGET, &tm, &am, threads);
        assert_eq!(reference, filtered, "threads={threads} changed the filtered sweep");
    }
}

/// A naive reference model of the split direct-mapped L1 front-end:
/// per-set resident line + written bit, plus the same-line fetch filter.
/// Computes the exact miss/victim event sequence the capture must emit.
struct NaiveL1 {
    sets: u64,
    isets: Vec<Option<(u64, bool)>>,
    dsets: Vec<Option<(u64, bool)>>,
    last_fetch: u64,
    events: Vec<MissEvent>,
    warmup_events: u64,
}

impl NaiveL1 {
    fn new(l1_bytes: u64, line_bytes: u64) -> Self {
        let sets = l1_bytes / line_bytes;
        NaiveL1 {
            sets,
            isets: vec![None; sets as usize],
            dsets: vec![None; sets as usize],
            last_fetch: u64::MAX,
            events: Vec::new(),
            warmup_events: 0,
        }
    }

    fn access(&mut self, r: MemRef) {
        let line = r.addr.line(16);
        let (side, is_write) = match r.kind {
            AccessKind::InstrFetch => {
                if line.0 == self.last_fetch {
                    return;
                }
                self.last_fetch = line.0;
                (&mut self.isets, false)
            }
            AccessKind::Load => (&mut self.dsets, false),
            AccessKind::Store => (&mut self.dsets, true),
        };
        let set = (line.0 % self.sets) as usize;
        match side[set] {
            Some((resident, ref mut written)) if resident == line.0 => {
                *written |= is_write;
            }
            old => {
                self.events.push(MissEvent {
                    kind: r.kind,
                    line,
                    victim: old.map(|(l, w)| VictimLine { line: LineAddr(l), written: w }),
                });
                side[set] = Some((line.0, is_write));
            }
        }
    }

    fn mark_warmup(&mut self) {
        self.warmup_events = self.events.len() as u64;
    }
}

fn capture_via_front_end(refs: &[MemRef], l1_bytes: u64, warm: usize) -> MissStream {
    let cfg = CacheConfig::new(l1_bytes, 16, Associativity::Direct, ReplacementKind::PseudoRandom)
        .expect("valid L1");
    let mut fe = L1FrontEnd::new(cfg);
    for r in &refs[..warm] {
        fe.access(*r);
    }
    fe.reset_stats();
    for r in &refs[warm..] {
        fe.access(*r);
    }
    fe.finish("random")
}

/// Strategy: a short random reference stream over a bounded line space.
fn ref_stream(max_lines: u64, len: usize) -> impl Strategy<Value = Vec<MemRef>> {
    prop::collection::vec((0..max_lines, 0u8..3), len).prop_map(|v| {
        v.into_iter()
            .map(|(line, kind)| {
                let addr = Addr::new(line * 16);
                match kind {
                    0 => MemRef::fetch(addr),
                    1 => MemRef::load(addr),
                    _ => MemRef::store(addr),
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The capture agrees event-for-event (kind, line, victim, written
    /// bit, warm-up bookmark) with the naive per-set reference model on
    /// random short traces.
    #[test]
    fn front_end_events_match_naive_model(
        refs in ref_stream(96, 300),
        l1_log in 6u32..9, // 64..256 bytes: 4..16 lines, plenty of evictions
        warm_frac in 0usize..4,
    ) {
        let l1_bytes = 1u64 << l1_log;
        let warm = refs.len() * warm_frac / 4;
        let stream = capture_via_front_end(&refs, l1_bytes, warm);
        let mut naive = NaiveL1::new(l1_bytes, 16);
        for r in &refs[..warm] {
            naive.access(*r);
        }
        naive.mark_warmup();
        for r in &refs[warm..] {
            naive.access(*r);
        }
        let got: Vec<MissEvent> = stream.events().collect();
        prop_assert_eq!(&got, &naive.events, "event streams diverged");
        prop_assert_eq!(stream.warmup_events(), naive.warmup_events);
        prop_assert_eq!(stream.l1_size_bytes(), l1_bytes);
    }

    /// The direct-mapped fast path answers a nested family of L2 sizes
    /// from one "smallest hitting size" threshold per event, which is
    /// sound because demand-filled DM contents are inclusive across
    /// nested power-of-two sizes — so L2 misses must be monotone
    /// non-increasing in L2 size on any trace.
    #[test]
    fn dm_family_misses_are_monotone_in_l2_size(
        refs in ref_stream(96, 300),
        warm_frac in 0usize..4,
    ) {
        let warm = refs.len() * warm_frac / 4;
        let stream = capture_via_front_end(&refs, 128, warm);
        let sizes = [256u64, 512, 1024, 2048];
        let cfgs: Vec<CacheConfig> = sizes
            .iter()
            .map(|&s| {
                CacheConfig::new(s, 16, Associativity::Direct, ReplacementKind::PseudoRandom)
                    .expect("valid DM L2")
            })
            .collect();
        let stats = replay_conventional_family(&cfgs, &stream);
        for (small, large) in stats.iter().zip(&stats[1..]) {
            prop_assert!(
                large.l2_misses <= small.l2_misses,
                "doubling a DM L2 raised misses: {} -> {}",
                small.l2_misses,
                large.l2_misses
            );
        }
    }
}

/// Thread fan-out is a scheduling detail: a sweep over a mixed
/// configuration list must return the same `DesignPoint`s in the same
/// order for any worker count.
#[test]
fn thread_count_does_not_change_design_points() {
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    let configs: Vec<MachineConfig> = hierarchy_kinds()
        .into_iter()
        .chain([
            MachineConfig::single_level(16, 50.0),
            MachineConfig::two_level(2, 32, 1, L2Policy::Exclusive, 50.0),
        ])
        .collect();
    let arena = capture_benchmark(SpecBenchmark::Eqntott, BUDGET);
    let serial = sweep_arena_threads(&configs, &arena, BUDGET, &tm, &am, 1);
    for threads in [2usize, 3, 8] {
        let parallel = sweep_arena_threads(&configs, &arena, BUDGET, &tm, &am, threads);
        assert_eq!(serial, parallel, "threads={threads} changed the sweep");
    }
}
