//! Observability acceptance tests: the `tlc-obs` counters and span
//! trees wired through the sweep pipeline must (a) agree between the
//! scalar filtered engine and the family-batched engine — the counters
//! are *measurements of the simulated machine*, so batching must not
//! change them; (b) nest worker spans under the spawning phase across
//! thread boundaries; (c) propagate worker panics as structured
//! [`SweepError`]s naming the failing unit; and (d) roll up into a
//! `tlc-run-manifest/2` document whose arithmetic invariants hold,
//! including the v2 latency histograms and memory section.
//!
//! The obs state is process-global, so every test takes `SERIAL`.

use std::sync::Mutex;
use tlc_area::AreaModel;
use tlc_core::experiment::{capture_benchmark, SimBudget};
use tlc_core::runner::{
    try_sweep_arena_threads, try_sweep_family_arena_threads, try_sweep_filtered_arena_threads,
    SweepUnit,
};
use tlc_core::{L2Policy, MachineConfig};
use tlc_obs::manifest::{build_span_tree, RunManifest, RunMeta};
use tlc_obs::Counter;
use tlc_timing::TimingModel;
use tlc_trace::spec::SpecBenchmark;
use tlc_trace::TraceArena;

static SERIAL: Mutex<()> = Mutex::new(());

const BUDGET: SimBudget = SimBudget { instructions: 12_000, warmup_instructions: 3_000 };

/// A mixed space: one single-level config plus conventional and
/// exclusive families over two L1 sizes, with both random-replacement
/// (LFSR-drawing) and direct-mapped L2s.
fn mixed_space() -> Vec<MachineConfig> {
    let mut configs = vec![MachineConfig::single_level(2, 50.0)];
    for l1_kb in [2u64, 4] {
        for (ways, policy) in
            [(4, L2Policy::Conventional), (1, L2Policy::Conventional), (4, L2Policy::Exclusive)]
        {
            for l2_kb in [16u64, 64] {
                configs.push(MachineConfig::two_level(l1_kb, l2_kb, ways, policy, 50.0));
            }
        }
    }
    configs
}

fn capture() -> TraceArena {
    capture_benchmark(SpecBenchmark::Li, BUDGET)
}

/// Snapshot of the simulation-measurement counters after a reset+sweep.
fn measure(sweep: impl FnOnce()) -> [u64; Counter::COUNT] {
    tlc_obs::reset();
    sweep();
    tlc_obs::counters().snapshot()
}

/// The family-batched engine must report the *same* counter totals as
/// the scalar filtered engine over the same space: events decoded, L1
/// hits/misses, L2 probes/hits/misses, writebacks, LFSR draws and
/// exclusive swaps are all facts about the simulated machine, not about
/// how the sweep batches its work.
#[test]
fn family_and_filtered_engines_report_identical_counters() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    if !tlc_obs::ENABLED {
        return; // nothing to measure in the no-op build
    }
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    let configs = mixed_space();
    let arena = capture();
    let scalar = measure(|| {
        try_sweep_filtered_arena_threads(&configs, &arena, BUDGET, &tm, &am, 1)
            .expect("filtered sweep succeeds");
    });
    let family = measure(|| {
        try_sweep_family_arena_threads(&configs, &arena, BUDGET, &tm, &am, 2)
            .expect("family sweep succeeds");
    });
    for c in Counter::ALL {
        // `l2.events_replayed` measures engine *work*, not the machine:
        // the family engine decodes each family's stream once instead of
        // once per member, so fewer replays is exactly the batching win.
        if c == Counter::L2EventsReplayed {
            continue;
        }
        assert_eq!(
            scalar[c as usize],
            family[c as usize],
            "counter {} diverged between filtered and family engines",
            c.name()
        );
    }
    assert!(
        family[Counter::L2EventsReplayed as usize] < scalar[Counter::L2EventsReplayed as usize],
        "family batching must replay fewer events than per-config filtering"
    );
    // And the totals are live: a space this size must decode events,
    // probe the L2s, and draw from the LFSR for the 4-way L2s.
    for c in [
        Counter::FilterEventsDecoded,
        Counter::FilterL1Hits,
        Counter::FilterL1Misses,
        Counter::L2Probes,
        Counter::L2LfsrDraws,
        Counter::L2ExclusiveSwaps,
        Counter::L2Writebacks,
    ] {
        assert!(family[c as usize] > 0, "counter {} stayed zero", c.name());
    }
}

/// Worker spans opened on pool threads must nest under the phase span
/// that spawned them: the `fan_out` phase's subtree contains one
/// `worker[i]` node per worker, recorded from threads other than the
/// one that opened `fan_out`.
#[test]
fn worker_spans_nest_under_spawning_phase_across_threads() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    if !tlc_obs::ENABLED {
        return;
    }
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    let configs = mixed_space();
    let arena = capture();
    tlc_obs::reset();
    try_sweep_family_arena_threads(&configs, &arena, BUDGET, &tm, &am, 2)
        .expect("family sweep succeeds");
    let records = tlc_obs::take_spans();
    let fan_out = records
        .iter()
        .find(|r| r.path.last().map(String::as_str) == Some("fan_out"))
        .expect("fan_out phase span recorded");
    // The l1_capture phase has worker spans of its own; look only at
    // the ones nested directly under fan_out.
    let workers: Vec<_> = records
        .iter()
        .filter(|r| {
            r.path.len() == fan_out.path.len() + 1
                && r.path[..fan_out.path.len()] == fan_out.path[..]
                && r.path.last().is_some_and(|s| s.starts_with("worker["))
        })
        .collect();
    assert_eq!(workers.len(), 2, "one span per worker under fan_out");
    for w in &workers {
        assert_ne!(
            w.thread, fan_out.thread,
            "worker span must be recorded from the pool thread, not the spawner"
        );
    }
    assert_ne!(workers[0].thread, workers[1].thread, "workers run on distinct threads");
    // The tree roll-up agrees: the fan_out node spans multiple threads
    // and its worker children carry the claimed items.
    let tree = build_span_tree(records);
    let fan_out_node = tree.iter().find(|n| n.name == "fan_out").expect("fan_out at tree root");
    let claimed: u64 = fan_out_node
        .children
        .iter()
        .filter(|c| c.name.starts_with("worker["))
        .map(|c| c.items)
        .sum();
    assert!(claimed > 0, "workers must report claimed items");
}

/// A panic on a worker thread surfaces as a structured error naming the
/// exact configuration, not as a bare propagated panic — and the
/// already-dispatched healthy work does not poison the result.
#[test]
fn worker_panic_is_reported_as_structured_error() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    let mut configs = mixed_space();
    // An L1 no cache can have: not a power of two. Construction panics
    // inside the worker's evaluation.
    let mut bad = MachineConfig::single_level(2, 50.0);
    bad.l1_size_bytes = 3000;
    let bad_index = configs.len();
    configs.push(bad);
    let arena = capture();
    for threads in [1usize, 2] {
        let err = try_sweep_arena_threads(&configs, &arena, BUDGET, &tm, &am, threads)
            .expect_err("invalid config must fail the sweep");
        match &err.unit {
            SweepUnit::Config { index, .. } => {
                assert_eq!(*index, bad_index, "error must name the failing config")
            }
            other => panic!("expected Config unit, got {other:?}"),
        }
        assert!(
            err.payload.contains("valid L1"),
            "payload must carry the panic message, got: {}",
            err.payload
        );
        let rendered = err.to_string();
        assert!(rendered.contains(&format!("config #{bad_index}")), "got: {rendered}");
    }
}

/// End-to-end roll-up: after a family sweep, a collected manifest
/// validates — schema tag present, L1 hits + misses equal events
/// decoded, L2 hits + misses equal probes, and every design point
/// counted — and survives a JSON round-trip.
#[test]
fn collected_manifest_validates_and_round_trips() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    let configs = mixed_space();
    let arena = capture();
    tlc_obs::reset();
    try_sweep_family_arena_threads(&configs, &arena, BUDGET, &tm, &am, 2)
        .expect("family sweep succeeds");
    let manifest = RunManifest::collect(RunMeta {
        command: "sweep".to_string(),
        benchmark: SpecBenchmark::Li.name().to_string(),
        engine: "family".to_string(),
        threads: 2,
        configs: configs.len() as u64,
        config_space_hash: "deadbeefdeadbeef".to_string(),
        wall_s: 0.0,
    });
    manifest.validate().expect("manifest invariants hold");
    if tlc_obs::ENABLED {
        assert_eq!(
            manifest.counter("runner.configs_completed"),
            Some(configs.len() as u64),
            "every design point must be counted"
        );
        let decoded = manifest.counter("filter.events_decoded").expect("counter present");
        let hits = manifest.counter("filter.l1_hits").expect("counter present");
        let misses = manifest.counter("filter.l1_misses").expect("counter present");
        assert_eq!(hits + misses, decoded);
        assert!(!manifest.spans.is_empty(), "span tree captured");
    }
    let back = RunManifest::from_json(&manifest.to_json()).expect("round-trips");
    assert_eq!(back.schema, manifest.schema);
    assert_eq!(back.counters.len(), manifest.counters.len());
    back.validate().expect("round-tripped manifest still validates");
}

/// Acceptance for the v2 distributions: a plain family sweep populates
/// at least three latency histograms (chunk replay, L1 group capture,
/// worker queue share) with monotone quantiles bounded by the recorded
/// max, and the memory section carries a real peak-RSS reading.
#[test]
fn family_sweep_manifest_carries_distributions_and_memory() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    let configs = mixed_space();
    let arena = capture();
    tlc_obs::reset();
    try_sweep_family_arena_threads(&configs, &arena, BUDGET, &tm, &am, 2)
        .expect("family sweep succeeds");
    let manifest = RunManifest::collect(RunMeta {
        command: "sweep".to_string(),
        benchmark: SpecBenchmark::Li.name().to_string(),
        engine: "family".to_string(),
        threads: 2,
        configs: configs.len() as u64,
        config_space_hash: "deadbeefdeadbeef".to_string(),
        wall_s: 0.0,
    });
    manifest.validate().expect("manifest invariants hold");
    // The memory section reads procfs regardless of the probe feature.
    assert!(manifest.memory.peak_rss_bytes > 0, "peak RSS must be read from /proc/self/status");
    assert!(manifest.memory.current_rss_bytes <= manifest.memory.peak_rss_bytes);
    if !tlc_obs::ENABLED {
        assert!(manifest.histograms.iter().all(|h| h.count == 0));
        return;
    }
    let populated: Vec<&str> =
        manifest.histograms.iter().filter(|h| h.count > 0).map(|h| h.name.as_str()).collect();
    assert!(populated.len() >= 3, "want >= 3 populated histograms, got {populated:?}");
    for name in ["replay.family_chunk_ns", "capture.l1_group_ns", "runner.worker_items"] {
        assert!(populated.contains(&name), "{name} must be populated by a family sweep");
    }
    for h in manifest.histograms.iter().filter(|h| h.count > 0) {
        assert!(
            h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max,
            "{}: quantiles not monotone",
            h.name
        );
        assert!(h.sum / h.count <= h.max, "{}: mean above max", h.name);
    }
    // The worker-share histogram is the queue-imbalance measure: one
    // sample per worker per fan-out (capture and sweep phases both fan
    // out here), so two workers yield at least two samples.
    let workers = manifest.histogram("runner.worker_items").expect("worker histogram");
    assert!(workers.count >= 2, "one sample per worker per fan-out, got {}", workers.count);
    assert!(workers.sum > 0, "workers must claim units");
    // Event-buffer accounting flows from the filter flush counter.
    assert_eq!(
        Some(manifest.memory.event_buffer_bytes),
        manifest.counter("filter.event_bytes"),
        "event-buffer bytes mirror the filter.event_bytes counter"
    );
}
