//! Integration tests of the full L2 fill-policy spectrum (extension
//! exhibit `policies`): enforced inclusion vs conventional vs exclusive
//! on real workloads, plus the energy and future-work extension models
//! driven end-to-end through the facade API.

use two_level_cache::area::{AreaModel, CacheGeometry, CellKind};
use two_level_cache::cache::{
    Associativity, CacheConfig, ConventionalTwoLevel, DuplicationReport, ExclusiveTwoLevel,
    InclusiveTwoLevel, MemorySystem,
};
use two_level_cache::study::energy::energy_per_instruction;
use two_level_cache::study::future::{tpi_extended, FutureWorkModel};
use two_level_cache::study::{evaluate, L2Policy, MachineConfig, MachineTiming, SimBudget};
use two_level_cache::timing::{EnergyModel, TimingModel};
use two_level_cache::trace::spec::SpecBenchmark;

fn drive<M: MemorySystem + ?Sized>(sys: &mut M, benchmark: SpecBenchmark, instructions: u64) {
    let mut w = benchmark.workload();
    for _ in 0..instructions {
        let i = w.next_instruction();
        sys.access_instruction(&i);
    }
}

#[test]
fn policy_miss_ordering_on_real_workloads() {
    // inclusive >= conventional >= exclusive off-chip misses, at the
    // capacity ratios where policy matters (L2 2–8× the L1 pair).
    let l1 = CacheConfig::paper(4 * 1024, Associativity::Direct).expect("valid");
    for l2_kb in [16u64, 32, 64] {
        let l2 = CacheConfig::paper(l2_kb * 1024, Associativity::SetAssoc(4)).expect("valid");
        for b in [SpecBenchmark::Gcc1, SpecBenchmark::Li] {
            let mut incl = InclusiveTwoLevel::new(l1, l2);
            let mut conv = ConventionalTwoLevel::new(l1, l2);
            let mut excl = ExclusiveTwoLevel::new(l1, l2);
            drive(&mut incl, b, 200_000);
            drive(&mut conv, b, 200_000);
            drive(&mut excl, b, 200_000);
            let (mi, mc, me) =
                (incl.stats().l2_misses, conv.stats().l2_misses, excl.stats().l2_misses);
            assert!(me < mc, "{b} L2={l2_kb}K: exclusive {me} !< conventional {mc}");
            assert!(mc <= mi, "{b} L2={l2_kb}K: conventional {mc} !<= inclusive {mi}");
        }
    }
}

#[test]
fn inclusion_invariant_holds_on_real_workload() {
    let l1 = CacheConfig::paper(2 * 1024, Associativity::Direct).expect("valid");
    let l2 = CacheConfig::paper(16 * 1024, Associativity::SetAssoc(4)).expect("valid");
    let mut sys = InclusiveTwoLevel::new(l1, l2);
    drive(&mut sys, SpecBenchmark::Doduc, 150_000);
    for line in sys.l1i().iter_lines().chain(sys.l1d().iter_lines()) {
        assert!(sys.l2().contains(line), "inclusion violated for {line}");
    }
    let rep = DuplicationReport::measure(sys.l1i(), sys.l1d(), sys.l2());
    // Inclusion means duplication ≈ all L1-resident lines.
    assert!(
        rep.duplicated as f64 >= 0.95 * (rep.l1i_lines + rep.l1d_lines) as f64,
        "inclusive hierarchy should duplicate every L1 line: {rep}"
    );
}

#[test]
fn energy_extension_end_to_end() {
    let timing = TimingModel::paper();
    let area = AreaModel::new();
    let energy = EnergyModel::new();
    let budget = SimBudget::quick();

    // The §1 power argument presupposes that "most accesses only require
    // an access to a small first-level cache" — i.e. a low L1 miss rate.
    // espresso is the paper's canonical low-miss workload.
    let single = MachineConfig::single_level(64, 50.0);
    let two = MachineConfig::two_level(8, 128, 4, L2Policy::Exclusive, 50.0);
    let ps = evaluate(&single, SpecBenchmark::Espresso, budget, &timing, &area);
    let pt = evaluate(&two, SpecBenchmark::Espresso, budget, &timing, &area);
    let es = energy_per_instruction(&single, &ps.stats, &timing, &energy);
    let et = energy_per_instruction(&two, &pt.stats, &timing, &energy);

    // §1 advantage 5: most two-level accesses touch a small L1.
    assert!(et.l1_access_eu < es.l1_access_eu, "8KB L1 must be cheaper than 64KB L1");
    // Both on-chip and total energy per instruction favour two-level.
    let onchip_s = es.epi_eu * (1.0 - es.offchip_fraction);
    let onchip_t = et.epi_eu * (1.0 - et.offchip_fraction);
    assert!(onchip_t < onchip_s, "two-level on-chip EPI {onchip_t} vs single {onchip_s}");
    assert!(et.epi_eu < es.epi_eu, "two-level total EPI {} vs single {}", et.epi_eu, es.epi_eu);
}

#[test]
fn future_work_conjectures_end_to_end() {
    let timing = TimingModel::paper();
    let area = AreaModel::new();
    let budget = SimBudget::quick();
    let datapath = timing.optimal(&CacheGeometry::paper(1024, 1), CellKind::SinglePorted).cycle_ns;

    let big_single = MachineConfig::single_level(256, 50.0);
    let two_level = MachineConfig::two_level(8, 128, 4, L2Policy::Conventional, 50.0);
    let pb = evaluate(&big_single, SpecBenchmark::Gcc1, budget, &timing, &area);
    let pt = evaluate(&two_level, SpecBenchmark::Gcc1, budget, &timing, &area);
    let tb = MachineTiming::derive(&big_single, &timing, &area);
    let tt = MachineTiming::derive(&two_level, &timing, &area);

    // Conjecture 1: multicycle L1 shrinks the big-single-level handicap.
    let baseline = FutureWorkModel::baseline();
    let multicycle = FutureWorkModel::multicycle(datapath, 0.3);
    let ratio_baseline =
        tpi_extended(&pb.stats, &tb, &baseline) / tpi_extended(&pt.stats, &tt, &baseline);
    let ratio_multicycle =
        tpi_extended(&pb.stats, &tb, &multicycle) / tpi_extended(&pt.stats, &tt, &multicycle);
    assert!(
        ratio_multicycle < ratio_baseline,
        "multicycle must shrink the two-level edge: {ratio_multicycle:.3} vs {ratio_baseline:.3}"
    );

    // Conjecture 2: under non-blocking overlap the two-level machine
    // still beats a same-L1 single-level machine.
    let small_single = MachineConfig::single_level(8, 50.0);
    let pss = evaluate(&small_single, SpecBenchmark::Gcc1, budget, &timing, &area);
    let tss = MachineTiming::derive(&small_single, &timing, &area);
    let nb = FutureWorkModel::baseline().with_miss_overlap(0.5);
    assert!(
        tpi_extended(&pt.stats, &tt, &nb) < tpi_extended(&pss.stats, &tss, &nb),
        "two-level must stay ahead under non-blocking overlap"
    );

    // And the extended model reduces to §2.5 exactly at the baseline.
    let classic = two_level_cache::study::tpi::tpi_ns(&pt.stats, &tt);
    let ext = tpi_extended(&pt.stats, &tt, &baseline);
    assert!((classic - ext).abs() < 1e-9);
}
