//! Property-based tests of the trace substrate: serialisation
//! round-trips, workload determinism, and statistics consistency.

use proptest::prelude::*;
use two_level_cache::trace::compact::{read_compact_trace, write_compact_trace, COMPACT_MAGIC};
use two_level_cache::trace::io::{
    read_binary_trace, read_text_trace, write_text_trace, BinaryTraceWriter,
};
use two_level_cache::trace::spec::SpecBenchmark;
use two_level_cache::trace::{
    AccessKind, Addr, CompactTraceWriter, InstructionRecord, MemRef, TraceIoError, TraceStats,
};

fn arbitrary_refs(len: usize) -> impl Strategy<Value = Vec<MemRef>> {
    prop::collection::vec((any::<u64>(), 0u8..3), 0..len).prop_map(|v| {
        v.into_iter()
            .map(|(addr, kind)| MemRef {
                addr: Addr::new(addr),
                kind: match kind {
                    0 => AccessKind::InstrFetch,
                    1 => AccessKind::Load,
                    _ => AccessKind::Store,
                },
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_roundtrip(refs in arbitrary_refs(200)) {
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::new(&mut buf).expect("write header");
        for r in &refs {
            w.write(*r).expect("write record");
        }
        prop_assert_eq!(w.written() as usize, refs.len());
        w.into_inner().expect("flush");
        let back = read_binary_trace(&buf[..]).expect("read back");
        prop_assert_eq!(back, refs);
    }

    #[test]
    fn text_roundtrip(refs in arbitrary_refs(200)) {
        let mut buf = Vec::new();
        write_text_trace(&mut buf, &refs).expect("write");
        let back = read_text_trace(&buf[..]).expect("read");
        prop_assert_eq!(back, refs);
    }

    #[test]
    fn stats_count_every_reference(refs in arbitrary_refs(300)) {
        let mut stats = TraceStats::new(16);
        for r in &refs {
            stats.record(*r);
        }
        prop_assert_eq!(stats.total_refs() as usize, refs.len());
        let fetches = refs.iter().filter(|r| r.kind == AccessKind::InstrFetch).count();
        prop_assert_eq!(stats.instr_refs() as usize, fetches);
        // Footprints cannot exceed reference counts.
        prop_assert!(stats.instr_footprint_lines() <= stats.instr_refs());
        prop_assert!(stats.data_footprint_lines() <= stats.data_refs());
    }
}

fn arbitrary_records(len: usize) -> impl Strategy<Value = Vec<InstructionRecord>> {
    prop::collection::vec((any::<u64>(), any::<u64>(), 0u8..3), 0..len).prop_map(|v| {
        v.into_iter()
            .map(|(fetch, addr, kind)| match kind {
                0 => InstructionRecord::fetch_only(Addr::new(fetch)),
                1 => InstructionRecord::with_data(Addr::new(fetch), MemRef::load(Addr::new(addr))),
                _ => InstructionRecord::with_data(Addr::new(fetch), MemRef::store(Addr::new(addr))),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compact_roundtrip(records in arbitrary_records(200)) {
        // TLCTRC01: arbitrary (worst-case random) addresses survive the
        // delta/varint encoding bit-for-bit.
        let mut buf = Vec::new();
        let mut w = CompactTraceWriter::new(&mut buf).expect("header");
        for r in &records {
            w.write(r).expect("record");
        }
        prop_assert_eq!(w.written() as usize, records.len());
        w.into_inner().expect("flush");
        let back = read_compact_trace(&buf[..]).expect("read back");
        prop_assert_eq!(back, records);
    }

    #[test]
    fn compact_truncation_is_diagnosed(records in arbitrary_records(40), cut_frac in 0.0f64..1.0) {
        // Any mid-record cut either decodes a clean prefix or reports a
        // typed Truncated/Corrupt error — never a panic, never silently
        // inventing records.
        let mut records = records;
        records.push(InstructionRecord::fetch_only(Addr::new(0x400)));
        let mut buf = Vec::new();
        write_compact_trace(&mut buf, &records).expect("write");
        let cut = 9 + ((buf.len() - 9) as f64 * cut_frac) as usize;
        match read_compact_trace(&buf[..cut]) {
            Ok(prefix) => prop_assert!(prefix.len() <= records.len()),
            Err(TraceIoError::Truncated { offset, .. }) => prop_assert!(offset as usize <= cut),
            Err(e) => prop_assert!(matches!(e, TraceIoError::Corrupt { .. }), "unexpected: {e}"),
        }
    }
}

#[test]
fn compact_rejects_corrupt_headers() {
    let mut buf = Vec::new();
    write_compact_trace(&mut buf, &[InstructionRecord::fetch_only(Addr::new(0x400))])
        .expect("write");
    // Wrong magic names both what was found and what was expected.
    let mut bad = buf.clone();
    bad[0..8].copy_from_slice(b"NOTATRAC");
    match read_compact_trace(&bad[..]) {
        Err(TraceIoError::BadMagic { found, expected }) => {
            assert_eq!(&found, b"NOTATRAC");
            assert_eq!(expected, COMPACT_MAGIC);
        }
        other => panic!("expected BadMagic, got {other:?}"),
    }
    // Future version byte is refused up front.
    let mut future = buf.clone();
    future[8] = 9;
    assert!(matches!(
        read_compact_trace(&future[..]),
        Err(TraceIoError::UnknownVersion { found: 9, .. })
    ));
    // A header alone is a valid empty trace; losing part of it is not.
    assert_eq!(read_compact_trace(&buf[..9]).expect("empty"), Vec::new());
    assert!(matches!(
        read_compact_trace(&buf[..5]),
        Err(TraceIoError::Truncated { .. } | TraceIoError::Io(_))
    ));
}

#[test]
fn workloads_are_deterministic_and_infinite() {
    for b in SpecBenchmark::ALL {
        let a: Vec<_> = b.workload().take_instructions(2_000);
        let c: Vec<_> = b.workload().take_instructions(2_000);
        assert_eq!(a, c, "{b}: same seed must give identical streams");
    }
}

#[test]
fn workload_streams_are_distinct_across_benchmarks() {
    // Different benchmarks must not accidentally share streams.
    let streams: Vec<Vec<_>> =
        SpecBenchmark::ALL.iter().map(|b| b.workload().take_instructions(200)).collect();
    for i in 0..streams.len() {
        for j in i + 1..streams.len() {
            assert_ne!(
                streams[i],
                streams[j],
                "{} and {} produced identical streams",
                SpecBenchmark::ALL[i],
                SpecBenchmark::ALL[j]
            );
        }
    }
}

#[test]
fn generated_trace_survives_binary_format() {
    // Full pipeline: generate → serialise → parse → identical stats.
    let mut w = SpecBenchmark::Doduc.workload();
    let mut refs = Vec::new();
    for _ in 0..5_000 {
        let i = w.next_instruction();
        refs.extend(i.refs());
    }
    let mut buf = Vec::new();
    let mut writer = BinaryTraceWriter::new(&mut buf).expect("header");
    for r in &refs {
        writer.write(*r).expect("record");
    }
    writer.into_inner().expect("flush");
    let back = read_binary_trace(&buf[..]).expect("read");
    assert_eq!(back, refs);

    let mut s1 = TraceStats::new(16);
    let mut s2 = TraceStats::new(16);
    refs.iter().for_each(|r| s1.record(*r));
    back.iter().for_each(|r| s2.record(*r));
    assert_eq!(s1.summary(), s2.summary());
}
