//! Differential testing: the production [`Cache`] against a naive,
//! obviously-correct reference model, over random access/fill/extract
//! sequences and all deterministic replacement policies.

use proptest::prelude::*;
use std::collections::VecDeque;
use two_level_cache::cache::{Associativity, Cache, CacheConfig, ReplacementKind};
use two_level_cache::trace::LineAddr;

/// Naive set-associative cache: per set, a recency/insertion-ordered list
/// of (line, dirty). O(ways) per operation, trivially correct.
struct NaiveCache {
    sets: Vec<VecDeque<(u64, bool)>>,
    ways: usize,
    num_sets: u64,
    lru: bool,
}

impl NaiveCache {
    fn new(num_sets: u64, ways: usize, lru: bool) -> Self {
        NaiveCache { sets: (0..num_sets).map(|_| VecDeque::new()).collect(), ways, num_sets, lru }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.num_sets) as usize
    }

    /// Access: returns hit; on hit refreshes recency (LRU only) and
    /// merges the dirty bit.
    fn access(&mut self, line: u64, write: bool) -> bool {
        let s = self.set_of(line);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
            let (l, d) = set[pos];
            set[pos] = (l, d | write);
            if self.lru {
                let e = set.remove(pos).expect("present");
                set.push_back(e); // back = most recent
            }
            true
        } else {
            false
        }
    }

    /// Fill: inserts; evicts front (least recent / oldest) if full.
    /// Returns the evicted (line, dirty).
    fn fill(&mut self, line: u64, dirty: bool) -> Option<(u64, bool)> {
        let s = self.set_of(line);
        let ways = self.ways;
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
            let (l, d) = set[pos];
            set[pos] = (l, d | dirty);
            if self.lru {
                let e = set.remove(pos).expect("present");
                set.push_back(e);
            }
            return None;
        }
        let evicted = if set.len() >= ways { set.pop_front() } else { None };
        set.push_back((line, dirty));
        evicted
    }

    fn extract(&mut self, line: u64) -> Option<bool> {
        let s = self.set_of(line);
        let set = &mut self.sets[s];
        let pos = set.iter().position(|&(l, _)| l == line)?;
        Some(set.remove(pos).expect("present").1)
    }

    fn contains(&self, line: u64) -> bool {
        let s = self.set_of(line);
        self.sets[s].iter().any(|&(l, _)| l == line)
    }

    fn resident(&self) -> u64 {
        self.sets.iter().map(|s| s.len() as u64).sum()
    }
}

/// Operations the fuzzer drives.
#[derive(Debug, Clone, Copy)]
enum Op {
    Access { line: u64, write: bool },
    AccessThenFillOnMiss { line: u64, write: bool },
    Extract { line: u64 },
}

fn op_strategy(max_line: u64) -> impl Strategy<Value = Op> {
    (0..max_line, any::<bool>(), 0u8..3).prop_map(|(line, write, kind)| match kind {
        0 => Op::Access { line, write },
        1 => Op::AccessThenFillOnMiss { line, write },
        _ => Op::Extract { line },
    })
}

fn run_differential(
    ops: &[Op],
    lines: u64,
    ways: u32,
    repl: ReplacementKind,
) -> Result<(), TestCaseError> {
    let assoc = if ways == 1 {
        Associativity::Direct
    } else if ways as u64 == lines {
        Associativity::Full
    } else {
        Associativity::SetAssoc(ways)
    };
    let cfg = CacheConfig::new(lines * 16, 16, assoc, repl).expect("valid config");
    let mut cache = Cache::new(cfg);
    let mut naive =
        NaiveCache::new(lines / ways as u64, ways as usize, repl == ReplacementKind::Lru);

    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Access { line, write } => {
                let h1 = cache.access(LineAddr(line), write);
                let h2 = naive.access(line, write);
                prop_assert_eq!(h1, h2, "op {}: access({}) hit mismatch", i, line);
            }
            Op::AccessThenFillOnMiss { line, write } => {
                let h1 = cache.access(LineAddr(line), write);
                let h2 = naive.access(line, write);
                prop_assert_eq!(h1, h2, "op {}: access({}) hit mismatch", i, line);
                if !h1 {
                    let e1 = cache.fill(LineAddr(line), write);
                    let e2 = naive.fill(line, write);
                    prop_assert_eq!(
                        e1.map(|e| (e.line.0, e.dirty)),
                        e2,
                        "op {}: fill({}) eviction mismatch",
                        i,
                        line
                    );
                }
            }
            Op::Extract { line } => {
                let x1 = cache.extract(LineAddr(line)).map(|(d, _)| d);
                let x2 = naive.extract(line);
                prop_assert_eq!(x1, x2, "op {}: extract({}) mismatch", i, line);
            }
        }
        prop_assert_eq!(
            cache.contains(LineAddr(ops[0].line_of())),
            naive.contains(ops[0].line_of())
        );
    }
    prop_assert_eq!(cache.resident_lines(), naive.resident());
    Ok(())
}

impl Op {
    fn line_of(&self) -> u64 {
        match *self {
            Op::Access { line, .. }
            | Op::AccessThenFillOnMiss { line, .. }
            | Op::Extract { line } => line,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lru_matches_reference_direct_mapped(ops in prop::collection::vec(op_strategy(64), 1..400)) {
        run_differential(&ops, 16, 1, ReplacementKind::Lru)?;
    }

    #[test]
    fn lru_matches_reference_4way(ops in prop::collection::vec(op_strategy(64), 1..400)) {
        run_differential(&ops, 16, 4, ReplacementKind::Lru)?;
    }

    #[test]
    fn lru_matches_reference_fully_assoc(ops in prop::collection::vec(op_strategy(64), 1..400)) {
        run_differential(&ops, 16, 16, ReplacementKind::Lru)?;
    }

    #[test]
    fn fifo_matches_reference_2way(ops in prop::collection::vec(op_strategy(48), 1..400)) {
        run_differential(&ops, 16, 2, ReplacementKind::Fifo)?;
    }

    #[test]
    fn fifo_matches_reference_8way(ops in prop::collection::vec(op_strategy(128), 1..400)) {
        run_differential(&ops, 32, 8, ReplacementKind::Fifo)?;
    }
}
