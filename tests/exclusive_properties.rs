//! Property-based tests of the cache hierarchies: accounting invariants,
//! policy relationships, and the exclusivity guarantees of §8, checked on
//! randomly generated reference streams.

use proptest::prelude::*;
use two_level_cache::cache::{
    Associativity, CacheConfig, ConventionalTwoLevel, DuplicationReport, ExclusiveTwoLevel,
    MemorySystem, SingleLevel,
};
use two_level_cache::trace::{Addr, MemRef};

/// Strategy: a stream of references over a bounded, line-quantised
/// address space, mixing fetch/load/store.
fn ref_stream(max_lines: u64, len: usize) -> impl Strategy<Value = Vec<MemRef>> {
    prop::collection::vec((0..max_lines, 0u8..8, 0u8..3), len).prop_map(|v| {
        v.into_iter()
            .map(|(line, word, kind)| {
                let addr = Addr::new(line * 16 + word as u64 * 4 % 16);
                match kind {
                    0 => MemRef::fetch(addr),
                    1 => MemRef::load(addr),
                    _ => MemRef::store(addr),
                }
            })
            .collect()
    })
}

/// Geometry strategy: L1 and L2 sizes (bytes) with L2 ≥ 2×L1, plus ways.
fn geometry() -> impl Strategy<Value = (u64, u64, u32)> {
    (6u32..10, 1u32..4, prop::sample::select(vec![1u32, 2, 4])).prop_map(
        |(l1_log, ratio_log, ways)| {
            let l1 = 1u64 << l1_log; // 64..512 bytes
            let l2 = l1 << ratio_log; // 2x..8x
            (l1, l2, ways)
        },
    )
}

fn build_pair(
    l1_bytes: u64,
    l2_bytes: u64,
    ways: u32,
) -> (ConventionalTwoLevel, ExclusiveTwoLevel) {
    let l1 = CacheConfig::paper(l1_bytes, Associativity::Direct).expect("valid L1");
    let assoc = if ways == 1 { Associativity::Direct } else { Associativity::SetAssoc(ways) };
    let l2 = CacheConfig::paper(l2_bytes, assoc).expect("valid L2");
    (ConventionalTwoLevel::new(l1, l2), ExclusiveTwoLevel::new(l1, l2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accounting_balances_for_all_systems(
        refs in ref_stream(256, 400),
        (l1, l2, ways) in geometry(),
    ) {
        let (mut conv, mut excl) = build_pair(l1, l2, ways);
        let mut single =
            SingleLevel::new(CacheConfig::paper(l1, Associativity::Direct).expect("valid"));
        for r in &refs {
            conv.access(*r);
            excl.access(*r);
            single.access(*r);
        }
        for stats in [conv.stats(), excl.stats(), single.stats()] {
            prop_assert_eq!(stats.total_refs() as usize, refs.len());
            prop_assert_eq!(stats.l1_misses(), stats.l2_hits + stats.l2_misses);
        }
        prop_assert_eq!(single.stats().l2_hits, 0);
    }

    #[test]
    fn same_l1_miss_count_regardless_of_l2_policy(
        refs in ref_stream(256, 400),
        (l1, l2, ways) in geometry(),
    ) {
        // The L1s are managed identically under both policies (the L2
        // only changes where refills come from), so L1 miss counts match.
        let (mut conv, mut excl) = build_pair(l1, l2, ways);
        for r in &refs {
            conv.access(*r);
            excl.access(*r);
        }
        prop_assert_eq!(conv.stats().l1i_misses, excl.stats().l1i_misses);
        prop_assert_eq!(conv.stats().l1d_misses, excl.stats().l1d_misses);
    }

    #[test]
    fn exclusive_duplicates_less(
        refs in ref_stream(512, 1500),
        (l1, l2, ways) in geometry(),
    ) {
        let (mut conv, mut excl) = build_pair(l1, l2, ways);
        for r in &refs {
            conv.access(*r);
            excl.access(*r);
        }
        let rc = DuplicationReport::measure(conv.l1i(), conv.l1d(), conv.l2());
        let re = DuplicationReport::measure(excl.l1i(), excl.l1d(), excl.l2());
        prop_assert!(
            re.duplicated <= rc.duplicated,
            "exclusive {} vs conventional {} duplicated lines",
            re.duplicated,
            rc.duplicated
        );
    }

    #[test]
    fn strict_exclusion_when_l2_sets_equal_l1_lines(
        lines in prop::collection::vec((0u64..1024, 0u8..2), 100..2000),
    ) {
        // Limiting case of §8: DM L2 whose set count equals the L1 line
        // count ⇒ every victim swap lands in the requested line's set,
        // so the hierarchy stays strictly exclusive at every step.
        // Geometry: L1 = 16 lines (256B); L2 DM with 16 sets (256B).
        // Data-side references only: with split caches, instruction and
        // data lines are disjoint in real streams, and a shared I/D line
        // legitimately breaks the data-side argument.
        let l1 = CacheConfig::paper(256, Associativity::Direct).expect("valid");
        let l2 = CacheConfig::paper(256, Associativity::Direct).expect("valid");
        let mut sys = ExclusiveTwoLevel::new(l1, l2);
        for (i, &(line, kind)) in lines.iter().enumerate() {
            let addr = Addr::new(line * 16);
            let r = if kind == 0 { MemRef::load(addr) } else { MemRef::store(addr) };
            sys.access(r);
            if i % 97 == 0 {
                let rep = DuplicationReport::measure(sys.l1i(), sys.l1d(), sys.l2());
                prop_assert_eq!(
                    rep.duplicated, 0,
                    "step {}: limiting-case geometry must stay strictly exclusive ({})",
                    i, rep
                );
            }
        }
        let rep = DuplicationReport::measure(sys.l1i(), sys.l1d(), sys.l2());
        prop_assert!(rep.is_exclusive());
    }

    #[test]
    fn resident_lines_never_exceed_capacity(
        refs in ref_stream(4096, 1000),
        (l1, l2, ways) in geometry(),
    ) {
        let (_, mut excl) = build_pair(l1, l2, ways);
        for r in &refs {
            excl.access(*r);
        }
        prop_assert!(excl.l1d().resident_lines() <= l1 / 16);
        prop_assert!(excl.l1i().resident_lines() <= l1 / 16);
        prop_assert!(excl.l2().resident_lines() <= l2 / 16);
    }

    #[test]
    fn deterministic_replay(
        refs in ref_stream(256, 300),
        (l1, l2, ways) in geometry(),
    ) {
        let (_, mut a) = build_pair(l1, l2, ways);
        let (_, mut b) = build_pair(l1, l2, ways);
        for r in &refs {
            prop_assert_eq!(a.access(*r), b.access(*r));
        }
        prop_assert_eq!(a.stats(), b.stats());
    }
}
