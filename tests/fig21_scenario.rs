//! End-to-end reproduction of the paper's Figure 21 and the §8 capacity
//! claims, driven through the public facade API.

use two_level_cache::cache::{
    Associativity, CacheConfig, ConventionalTwoLevel, DuplicationReport, ExclusiveTwoLevel,
    MemorySystem, ServiceLevel,
};
use two_level_cache::trace::{Addr, MemRef};

/// Figure 21 geometry: 4-line L1 caches, 16-line L2, direct-mapped,
/// 16-byte lines.
fn fig21_system() -> ExclusiveTwoLevel {
    ExclusiveTwoLevel::new(
        CacheConfig::paper(64, Associativity::Direct).expect("valid L1"),
        CacheConfig::paper(256, Associativity::Direct).expect("valid L2"),
    )
}

#[test]
fn fig21a_both_level_conflict_resolves_to_exclusion() {
    let mut sys = fig21_system();
    let a = Addr::new(0x000);
    let e = Addr::new(0x100); // same L1 line, same L2 line as A
    sys.access(MemRef::load(a));
    sys.access(MemRef::load(e));
    // "If references to A and E alternate, they will repeatedly exchange
    // places. Thus, each line would exist in exactly one level of the
    // hierarchy."
    for round in 0..10 {
        for addr in [a, e] {
            assert_eq!(
                sys.access(MemRef::load(addr)),
                ServiceLevel::L2,
                "round {round}: conflict pair should swap on-chip"
            );
            let (la, le) = (a.line(16), e.line(16));
            assert!(
                sys.l1d().contains(la) ^ sys.l2().contains(la),
                "A must live in exactly one level"
            );
            assert!(
                sys.l1d().contains(le) ^ sys.l2().contains(le),
                "E must live in exactly one level"
            );
        }
    }
    assert_eq!(sys.stats().l2_misses, 2, "only the two compulsory misses go off-chip");
}

#[test]
fn fig21b_l1_only_conflict_keeps_inclusion() {
    let mut sys = fig21_system();
    let a = Addr::new(0x000); // L2 line 0
    let b = Addr::new(0x040); // same L1 line as A, L2 line 4
    sys.access(MemRef::load(a));
    sys.access(MemRef::load(b));
    sys.access(MemRef::load(a));
    // "If a conflict occurs only in the first-level cache, however,
    // exclusion will not result."
    assert!(sys.l1d().contains(a.line(16)));
    assert!(sys.l2().contains(a.line(16)), "A keeps its L2 copy (inclusion)");
    assert!(sys.l2().contains(b.line(16)), "victim B goes to its own L2 line");
}

#[test]
fn fig21b_second_pair_c_d_also_inclusive() {
    // The paper's panel (b) also mentions references to C and D staying
    // inclusive; use two more lines that share an L1 set but not an L2
    // set.
    let mut sys = fig21_system();
    let c = Addr::new(0x010); // L1 line 1, L2 line 1
    let d = Addr::new(0x050); // L1 line 1, L2 line 5
    sys.access(MemRef::load(c));
    sys.access(MemRef::load(d));
    sys.access(MemRef::load(c));
    sys.access(MemRef::load(d));
    assert!(sys.l2().contains(c.line(16)) || sys.l1d().contains(c.line(16)));
    assert!(sys.l2().contains(d.line(16)) && sys.l1d().contains(d.line(16)));
}

#[test]
fn capacity_reaches_2x_plus_y_in_limiting_case() {
    // §8: "In the limiting case with the number of L2 sets equal to the
    // number of lines in the L1 cache, exactly 2x+y unique lines will
    // always be held on-chip." Build that geometry for the data side:
    // L1 = 64 lines (1KB), L2 direct-mapped with 64 sets (1KB).
    let mut sys = ExclusiveTwoLevel::new(
        CacheConfig::paper(1024, Associativity::Direct).expect("valid"),
        CacheConfig::paper(1024, Associativity::Direct).expect("valid"),
    );
    // Touch far more distinct data lines than fit, repeatedly.
    for pass in 0..6u64 {
        for i in 0..4096u64 {
            sys.access(MemRef::load(Addr::new(((i * 37 + pass) % 4096) * 16)));
        }
    }
    let report = DuplicationReport::measure(sys.l1i(), sys.l1d(), sys.l2());
    // Data side: x = 64, y = 64 → up to x + y = 128 unique data lines
    // (the instruction L1 is idle here). Everything resident must be
    // unique (strict exclusion) and the structure full.
    assert_eq!(report.duplicated, 0, "limiting case must be strictly exclusive: {report}");
    assert_eq!(report.l1d_lines, 64);
    assert_eq!(report.l2_lines, 64);
}

#[test]
fn exclusive_never_loses_to_conventional_on_conflict_storms() {
    // Sweep alternating conflict pairs at several geometries; the
    // exclusive policy must never go off-chip more often.
    for (l1_bytes, l2_bytes) in [(64u64, 256u64), (128, 512), (256, 1024)] {
        let l1 = CacheConfig::paper(l1_bytes, Associativity::Direct).expect("valid");
        let l2 = CacheConfig::paper(l2_bytes, Associativity::Direct).expect("valid");
        let mut excl = ExclusiveTwoLevel::new(l1, l2);
        let mut conv = ConventionalTwoLevel::new(l1, l2);
        for i in 0..2000u64 {
            // Two addresses conflicting in both levels.
            let addr = Addr::new((i % 2) * l2_bytes);
            excl.access(MemRef::load(addr));
            conv.access(MemRef::load(addr));
        }
        assert!(
            excl.stats().l2_misses <= conv.stats().l2_misses,
            "{l1_bytes}/{l2_bytes}: exclusive {} vs conventional {}",
            excl.stats().l2_misses,
            conv.stats().l2_misses
        );
        assert_eq!(excl.stats().l2_misses, 2, "{l1_bytes}/{l2_bytes}: storm should stay on-chip");
    }
}
