//! The sampled-sweep error contract: weighted phase recombination
//! reconstructs whole-trace results within
//! `SAMPLED_MISS_RATIO_EPSILON` of full replay, and the documented
//! degenerate cases (one interval covering the stream, any K) are exact
//! to the bit.
//!
//! Ground truth is the family engine replaying the entire captured
//! stream with no warm-up discard; the sampled run sees exactly the same
//! stream through `sample_source` + `capture_phase_slices` +
//! `sweep_sampled_threads` (stitched warming). Parameters follow the
//! module docs' guidance: the interval (40K instructions) delivers L1
//! miss counts comparable to the largest L2's line count, the warm-up
//! refresh is half an interval, and K = 5 over 12 intervals.

use two_level_cache::area::AreaModel;
use two_level_cache::cache::miss_ratio_error;
use two_level_cache::study::runner::{sweep_family_arena_threads, sweep_sampled_threads};
use two_level_cache::study::sampling::{
    capture_phase_slices, sample_source, SampleOptions, SAMPLED_MISS_RATIO_EPSILON,
};
use two_level_cache::study::{DesignPoint, L2Policy, MachineConfig, SimBudget};
use two_level_cache::timing::TimingModel;
use two_level_cache::trace::spec::SpecBenchmark;
use two_level_cache::trace::{ReplaySource, TraceArena};

const STREAM_LEN: u64 = 480_000;

/// One representative configuration per hierarchy shape the paper
/// studies: single-level, conventional two-level, exclusive two-level.
fn shapes() -> Vec<MachineConfig> {
    vec![
        MachineConfig::single_level(4, 50.0),
        MachineConfig::two_level(4, 64, 4, L2Policy::Conventional, 50.0),
        MachineConfig::two_level(4, 64, 4, L2Policy::Exclusive, 50.0),
    ]
}

/// Full-replay ground truth: the whole stream, no warm-up discard.
fn full_points(benchmark: SpecBenchmark, configs: &[MachineConfig]) -> Vec<DesignPoint> {
    let records = benchmark.workload().take_instructions(STREAM_LEN as usize);
    let mut source = ReplaySource::new(benchmark.name(), records);
    let arena = TraceArena::capture(&mut source, STREAM_LEN);
    let budget = SimBudget { instructions: STREAM_LEN, warmup_instructions: 0 };
    sweep_family_arena_threads(configs, &arena, budget, &TimingModel::paper(), &AreaModel::new(), 2)
}

/// Sampled reconstruction of the same stream.
fn sampled_points(
    benchmark: SpecBenchmark,
    configs: &[MachineConfig],
    opts: &SampleOptions,
    warmup: u64,
) -> Vec<DesignPoint> {
    let records = benchmark.workload().take_instructions(STREAM_LEN as usize);
    let sample = sample_source(&mut ReplaySource::new(benchmark.name(), records.clone()), opts);
    sample.validate().expect("valid selection");
    let slices =
        capture_phase_slices(&mut ReplaySource::new(benchmark.name(), records), &sample, warmup);
    sweep_sampled_threads(configs, &slices, &TimingModel::paper(), &AreaModel::new(), 2)
}

#[test]
fn sampled_reconstruction_is_within_epsilon_on_every_benchmark() {
    let configs = shapes();
    let opts = SampleOptions { interval: 40_000, phases: 5, seed: 0xC1 };
    for benchmark in SpecBenchmark::ALL {
        let full = full_points(benchmark, &configs);
        let sampled = sampled_points(benchmark, &configs, &opts, 20_000);
        for (f, s) in full.iter().zip(&sampled) {
            assert_eq!(f.label, s.label);
            let err = miss_ratio_error(&f.stats, &s.stats);
            assert!(
                err <= SAMPLED_MISS_RATIO_EPSILON,
                "{benchmark} {}: local L2 miss-ratio error {err:.4} > ε {SAMPLED_MISS_RATIO_EPSILON}",
                f.label
            );
            let l1_err = (f.stats.l1_miss_rate() - s.stats.l1_miss_rate()).abs();
            assert!(
                l1_err <= SAMPLED_MISS_RATIO_EPSILON,
                "{benchmark} {}: L1 miss-ratio error {l1_err:.4} > ε",
                f.label
            );
        }
    }
}

#[test]
fn single_interval_selection_is_exact_for_any_k() {
    // interval >= stream: the one representative slice IS the stream and
    // its weight is 1.0, so recombination must equal full replay
    // bit-for-bit — for K = 1 and for K larger than the interval count.
    let configs = shapes();
    for benchmark in [SpecBenchmark::Li, SpecBenchmark::Fpppp] {
        let full = full_points(benchmark, &configs);
        for k in [1usize, 4] {
            let opts = SampleOptions { interval: STREAM_LEN, phases: k, seed: 9 };
            let sampled = sampled_points(benchmark, &configs, &opts, 0);
            for (f, s) in full.iter().zip(&sampled) {
                assert_eq!(
                    f.stats, s.stats,
                    "{benchmark} {} (k={k}): degenerate sampling must be exact",
                    f.label
                );
                assert!((f.tpi_ns - s.tpi_ns).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn sampled_sweep_is_deterministic_in_the_seed() {
    let configs = shapes();
    let opts = SampleOptions { interval: 40_000, phases: 3, seed: 0xDEADBEEF };
    let a = sampled_points(SpecBenchmark::Eqntott, &configs, &opts, 10_000);
    let b = sampled_points(SpecBenchmark::Eqntott, &configs, &opts, 10_000);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.stats, y.stats, "same seed must reproduce the sweep exactly");
    }
}
