//! Integration tests for the extension substrates: stream buffers, the
//! board-level cache with inclusion maintenance, time-sliced
//! multiprogramming, banking, and the Mattson profiler against real
//! workloads — all through the public facade API.

use two_level_cache::cache::{
    Associativity, BoardCache, CacheConfig, ConventionalTwoLevel, MemorySystem, ServiceLevel,
    SingleLevel, StackDistanceProfiler, StreamBufferSystem,
};
use two_level_cache::study::banking::{measure_conflict_rate, BankingParams};
use two_level_cache::trace::spec::SpecBenchmark;
use two_level_cache::trace::{InstructionSource, TimeSliced};

#[test]
fn stream_buffers_help_streaming_not_pointer_chasing() {
    let l1 = CacheConfig::paper(4 * 1024, Associativity::Direct).expect("valid");
    let reduction = |b: SpecBenchmark| {
        let mut plain = SingleLevel::new(l1);
        let mut buffered = StreamBufferSystem::new(l1, 8, 4);
        let mut w = b.workload();
        for _ in 0..150_000 {
            let rec = w.next_instruction();
            plain.access_instruction(&rec);
            buffered.access_instruction(&rec);
        }
        1.0 - buffered.stats().l2_misses as f64 / plain.stats().l2_misses as f64
    };
    let tomcatv = reduction(SpecBenchmark::Tomcatv);
    let li = reduction(SpecBenchmark::Li);
    assert!(tomcatv > 0.6, "streaming workload should lose most misses: {tomcatv:.2}");
    assert!(li < tomcatv, "pointer chasing must benefit less: li {li:.2} vs tomcatv {tomcatv:.2}");
}

#[test]
fn board_cache_inclusion_is_maintained() {
    // Drive an on-chip hierarchy with a tiny board cache behind it,
    // purging on-chip copies whenever the board evicts. Inclusion
    // invariant: every on-chip line is on the board.
    let l1 = CacheConfig::paper(512, Associativity::Direct).expect("valid");
    let l2 = CacheConfig::paper(2 * 1024, Associativity::SetAssoc(4)).expect("valid");
    let mut sys = ConventionalTwoLevel::new(l1, l2);
    let mut board = BoardCache::new(8 * 1024, 2, 16).expect("valid");
    let mut w = SpecBenchmark::Gcc1.workload();
    let mut purged_total = 0u64;
    for i in 0..80_000u64 {
        let rec = w.next_instruction();
        for r in rec.refs() {
            if sys.access(r) == ServiceLevel::Memory {
                let out = board.access(r.addr.line(16));
                if let Some(ev) = out.evicted {
                    purged_total += sys.invalidate_line(ev) as u64;
                }
            }
        }
        if i % 10_000 == 0 {
            for line in sys.l1i().iter_lines().chain(sys.l1d().iter_lines()) {
                assert!(board.contains(line), "L1 line {line} not on board at step {i}");
            }
            for line in sys.l2().iter_lines() {
                assert!(board.contains(line), "L2 line {line} not on board at step {i}");
            }
        }
    }
    assert!(purged_total > 0, "a tiny board must force purges");
}

#[test]
fn multiprogramming_inflates_misses() {
    let l1 = CacheConfig::paper(8 * 1024, Associativity::Direct).expect("valid");
    // Solo gcc1 misses.
    let mut solo = SingleLevel::new(l1);
    let mut w = SpecBenchmark::Gcc1.workload();
    let mut gcc_instr = 0u64;
    for _ in 0..100_000 {
        let rec = w.next_instruction();
        solo.access_instruction(&rec);
        gcc_instr += 1;
    }
    let _ = gcc_instr;

    // gcc1 sharing with tomcatv on the same-size hierarchy, short quantum.
    let mut shared = SingleLevel::new(l1);
    let mut mp = TimeSliced::new(
        vec![Box::new(SpecBenchmark::Gcc1.workload()), Box::new(SpecBenchmark::Tomcatv.workload())],
        2_000,
    );
    // Run 200K instructions total => ~100K of gcc1.
    for _ in 0..200_000 {
        let rec = mp.next_instruction_opt().expect("infinite");
        shared.access_instruction(&rec);
    }
    // The shared run covers the same gcc1 instruction count plus
    // tomcatv's; its *rate* of misses per instruction must exceed the
    // weighted solo rates would predict if caches were free — at minimum,
    // gcc1's footprint is repeatedly evicted. Compare miss rates.
    let solo_rate = solo.stats().l1_miss_rate();
    let shared_rate = shared.stats().l1_miss_rate();
    assert!(
        shared_rate > solo_rate,
        "sharing must not reduce the miss rate: shared {shared_rate:.4} vs solo gcc1 {solo_rate:.4}"
    );
    assert!(mp.context_switches() >= 99);
}

#[test]
fn banking_conflicts_fall_with_bank_count_on_all_workloads() {
    for b in SpecBenchmark::ALL {
        let p2 = measure_conflict_rate(b, 20_000, 2, 16);
        let p16 = measure_conflict_rate(b, 20_000, 16, 16);
        assert!(
            p16 <= p2 + 1e-9,
            "{b}: 16 banks ({p16:.3}) should not conflict more than 2 ({p2:.3})"
        );
    }
    // Area factors bracket the dual-ported cell's 2x.
    assert!(BankingParams::new(2).area_factor() < 2.0);
    assert!(BankingParams::new(8).area_factor() < 2.0);
}

#[test]
fn mattson_profile_agrees_with_cache_sim_on_real_workload() {
    // One profiling pass of li's data stream must match direct
    // fully-associative LRU simulation at several sizes.
    let mut w = SpecBenchmark::Li.workload();
    let lines: Vec<_> =
        (0..60_000).filter_map(|_| w.next_instruction().data.map(|d| d.addr.line(16))).collect();

    let mut profiler = StackDistanceProfiler::new();
    for &l in &lines {
        profiler.record(l);
    }
    for capacity in [64u64, 512, 4096] {
        let cfg = CacheConfig::new(
            capacity * 16,
            16,
            Associativity::Full,
            two_level_cache::cache::ReplacementKind::Lru,
        )
        .expect("valid");
        let mut cache = two_level_cache::cache::Cache::new(cfg);
        let mut misses = 0u64;
        for &l in &lines {
            if !cache.access(l, false) {
                cache.fill(l, false);
                misses += 1;
            }
        }
        assert_eq!(
            profiler.misses_at_capacity(capacity),
            misses,
            "profiler vs simulation at {capacity} lines"
        );
    }
}
