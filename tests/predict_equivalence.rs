//! Analytical-prediction equivalence: the one-pass reuse-distance
//! predictor (`--engine predict`) is the only engine that is *not*
//! bit-identical to the replay family — its contract is a tolerance
//! (`tlc_cache::MISS_RATIO_EPSILON` on the local L2 miss ratio) plus
//! exactness on the classes where the model admits no approximation
//! (single-level hierarchies and direct-mapped L2s).
//!
//! These are the acceptance tests for that contract: every benchmark ×
//! a grid of L1/L2 geometries, predicted against the family-batched
//! replay engine that remains the ground truth. The replayed L2s use
//! pseudo-random replacement while the predictor models LRU, so the
//! tolerance absorbs both the binomial set-partition approximation and
//! the replacement-policy gap (see `docs/models.md`).

use tlc_area::AreaModel;
use tlc_cache::{miss_ratio_error, MISS_RATIO_EPSILON};
use tlc_core::experiment::{
    capture_benchmark, capture_miss_stream, evaluate_family, evaluate_predicted, SimBudget,
};
use tlc_core::runner::{sweep_family_arena_threads, try_sweep_predict_arena_threads};
use tlc_core::{L2Policy, MachineConfig};
use tlc_timing::TimingModel;
use tlc_trace::spec::SpecBenchmark;

const BUDGET: SimBudget = SimBudget { instructions: 12_000, warmup_instructions: 3_000 };

/// Asserts the predictor's full accuracy contract for one member
/// against its replayed ground truth.
fn assert_contract(
    benchmark: SpecBenchmark,
    cfg: &MachineConfig,
    got: &tlc_core::experiment::DesignPoint,
    want: &tlc_core::experiment::DesignPoint,
) {
    assert_eq!(got.label, want.label, "{}: labels diverged", benchmark.name());
    assert_eq!(got.workload, want.workload, "{}: workloads diverged", benchmark.name());
    assert_eq!(got.area_rbe, want.area_rbe, "{}: area model diverged", benchmark.name());
    match cfg.l2 {
        None => assert_eq!(
            got.stats,
            want.stats,
            "{} on {}: single-level members must be exact",
            benchmark.name(),
            cfg.label()
        ),
        Some(spec) if spec.ways == 1 => assert_eq!(
            (got.stats.l2_hits, got.stats.l2_misses),
            (want.stats.l2_hits, want.stats.l2_misses),
            "{} on {}: direct-mapped hit/miss counts must be exact",
            benchmark.name(),
            cfg.label()
        ),
        Some(_) => {
            let err = miss_ratio_error(&got.stats, &want.stats);
            assert!(
                err <= MISS_RATIO_EPSILON,
                "{} on {}: miss-ratio error {err:.4} > ε={MISS_RATIO_EPSILON} \
                 (predicted {:?}, replayed {:?})",
                benchmark.name(),
                cfg.label(),
                got.stats,
                want.stats
            );
        }
    }
}

/// Every benchmark × a grid of conventional geometries: single-level,
/// direct-mapped (exact class), and set-associative L2s of mixed sizes
/// and ways — one heterogeneous predicted batch per (benchmark, L1),
/// each member held to the contract against the family replay.
#[test]
fn predicted_miss_ratios_meet_epsilon_on_all_benchmarks() {
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    for benchmark in SpecBenchmark::ALL {
        let arena = capture_benchmark(benchmark, BUDGET);
        for l1_kb in [2u64, 4] {
            let stream = capture_miss_stream(l1_kb * 1024, 16, &arena, BUDGET, usize::MAX)
                .expect("unbounded capture succeeds");
            let mut cfgs = vec![MachineConfig::single_level(l1_kb, 50.0)];
            for l2_kb in [16u64, 64] {
                for ways in [1u32, 2, 4, 8] {
                    cfgs.push(MachineConfig::two_level(
                        l1_kb,
                        l2_kb,
                        ways,
                        L2Policy::Conventional,
                        50.0,
                    ));
                }
            }
            let predicted = evaluate_predicted(&cfgs, &stream, &tm, &am);
            assert_eq!(predicted.len(), cfgs.len());
            for (cfg, got) in cfgs.iter().zip(&predicted) {
                // Ground truth: the family engine over the singleton
                // family, bit-identical to filtered/arena replay.
                let want = &evaluate_family(std::slice::from_ref(cfg), &stream, &tm, &am)[0];
                assert_contract(benchmark, cfg, got, want);
            }
        }
    }
}

/// The predict *sweep* honours the same contract end to end on a mixed
/// space that exercises every fallback: predictable conventional and
/// single-level members are predicted, exclusive members are replayed
/// bit-identically through the family engine, and ordering survives the
/// fan-out for any thread count.
#[test]
fn predict_sweep_contract_holds_across_benchmarks_and_threads() {
    let tm = TimingModel::paper();
    let am = AreaModel::new();
    for benchmark in [SpecBenchmark::Fpppp, SpecBenchmark::Tomcatv, SpecBenchmark::Espresso] {
        let arena = capture_benchmark(benchmark, BUDGET);
        let configs: Vec<MachineConfig> = vec![
            MachineConfig::single_level(4, 50.0),
            MachineConfig::two_level(4, 32, 4, L2Policy::Conventional, 50.0),
            MachineConfig::two_level(4, 16, 1, L2Policy::Conventional, 50.0),
            MachineConfig::two_level(4, 64, 2, L2Policy::Conventional, 200.0),
            MachineConfig::two_level(4, 32, 4, L2Policy::Exclusive, 50.0),
            MachineConfig::two_level(2, 64, 8, L2Policy::Conventional, 50.0),
        ];
        let truth = sweep_family_arena_threads(&configs, &arena, BUDGET, &tm, &am, 1);
        for threads in [1usize, 4] {
            let swept =
                try_sweep_predict_arena_threads(&configs, &arena, BUDGET, &tm, &am, threads)
                    .expect("predict sweep succeeds");
            assert_eq!(swept.len(), truth.len());
            for ((cfg, got), want) in configs.iter().zip(&swept).zip(&truth) {
                if cfg.l2.map(|s| s.policy) == Some(L2Policy::Exclusive) {
                    assert_eq!(
                        got,
                        want,
                        "{} threads={threads}: exclusive members must replay bit-identically",
                        benchmark.name()
                    );
                } else {
                    assert_contract(benchmark, cfg, got, want);
                }
            }
        }
    }
}
