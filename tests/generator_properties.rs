//! Property-based tests over the workload-generation substrate: the JSON
//! spec layer, time-slicing, and the statistical contracts of the
//! built-in presets.

use proptest::prelude::*;
use two_level_cache::trace::spec::SpecBenchmark;
use two_level_cache::trace::specfile::{
    ChaseSpec, CodeSpec, DataSpec, RegionSpec, StreamSpec, WorkloadSpec,
};
use two_level_cache::trace::{InstructionSource, TimeSliced};

fn code_spec() -> impl Strategy<Value = CodeSpec> {
    (3u64..8, 1usize..40, 1.0f64..20.0, 0.0f64..0.1).prop_map(
        |(log_kb, n_sites, mean_iters, p_excursion)| {
            // Quantise floats so JSON round-trips compare exactly.
            let mean_iters = (mean_iters * 1000.0).round() / 1000.0;
            let p_excursion = (p_excursion * 1000.0).round() / 1000.0;
            CodeSpec {
                footprint_kb: 1 << log_kb,
                n_sites,
                body_min_bytes: 64,
                body_max_bytes: 512,
                mean_iters,
                zipf_theta: 1.0,
                p_excursion,
                excursion_bytes: 256,
                base: 0x40_0000,
            }
        },
    )
}

fn data_spec() -> impl Strategy<Value = DataSpec> {
    prop_oneof![
        prop::collection::vec(
            (0u64..4, 1u64..9, 0.1f64..1.0, 1.0f64..8.0).prop_map(|(slot, log_kb, w, run)| {
                RegionSpec {
                    base: 0x1000_0000 + slot * 0x100_0000,
                    size_kb: 1 << log_kb,
                    weight: (w * 1000.0).round() / 1000.0,
                    mean_run: (run * 1000.0).round() / 1000.0,
                }
            }),
            1..4
        )
        .prop_map(DataSpec::Regions),
        prop::collection::vec(
            (0u64..4, 4u64..10, prop::sample::select(vec![4u64, 8, 16])).prop_map(
                |(slot, log_kb, stride)| StreamSpec {
                    base: 0x7000_0000 + slot * 0x100_0000,
                    size_kb: 1 << log_kb,
                    stride_bytes: stride,
                }
            ),
            1..4
        )
        .prop_map(DataSpec::Stream),
        (4u64..10, 0.0f64..0.05).prop_map(|(log_kb, p)| DataSpec::Chase(ChaseSpec {
            base: 0x4000_0000,
            size_kb: 1 << log_kb,
            p_restart: (p * 10000.0).round() / 10000.0,
        })),
    ]
}

fn workload_spec() -> impl Strategy<Value = WorkloadSpec> {
    (code_spec(), data_spec(), 0u64..1000, 0.05f64..0.6, 0.0f64..0.5).prop_map(
        |(code, data, seed, dpi, sf)| WorkloadSpec {
            name: "prop".into(),
            seed,
            data_per_instr: (dpi * 1000.0).round() / 1000.0,
            store_fraction: (sf * 1000.0).round() / 1000.0,
            code,
            data,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_valid_spec_roundtrips_and_builds(spec in workload_spec()) {
        // JSON roundtrip is lossless.
        let back = WorkloadSpec::from_json(&spec.to_json()).expect("roundtrip parses");
        prop_assert_eq!(&back, &spec);
        // Building succeeds and streams deterministically.
        let a = spec.build().expect("builds").take_instructions(300);
        let b = spec.build().expect("builds").take_instructions(300);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn spec_data_ratio_is_respected(spec in workload_spec()) {
        let mut w = spec.build().expect("builds");
        let n = 20_000;
        let data = (0..n).filter(|_| w.next_instruction().data.is_some()).count();
        let observed = data as f64 / n as f64;
        prop_assert!(
            (observed - spec.data_per_instr).abs() < 0.03,
            "observed {observed} vs spec {}",
            spec.data_per_instr
        );
    }

    #[test]
    fn timesliced_preserves_per_process_streams(
        quantum in 1u64..500,
        take in 100usize..2000,
    ) {
        // Interleaving must not alter either process's own sequence:
        // filtering the merged stream by origin reproduces each solo
        // stream's prefix.
        let mut mp = TimeSliced::new(
            vec![
                Box::new(SpecBenchmark::Espresso.workload()),
                Box::new(SpecBenchmark::Tomcatv.workload()),
            ],
            quantum,
        );
        let merged: Vec<_> =
            (0..take).map(|_| mp.next_instruction_opt().expect("infinite")).collect();
        // espresso's code lives at CODE_BASE like tomcatv's, but their
        // data and code *contents* differ; identify origin by replaying
        // both solo streams in lockstep with the quantum schedule.
        let mut solo_a = SpecBenchmark::Espresso.workload();
        let mut solo_b = SpecBenchmark::Tomcatv.workload();
        let mut current = 0;
        let mut in_quantum = 0u64;
        for (idx, rec) in merged.into_iter().enumerate() {
            if in_quantum >= quantum {
                in_quantum = 0;
                current = (current + 1) % 2;
            }
            let expect = if current == 0 {
                solo_a.next_instruction()
            } else {
                solo_b.next_instruction()
            };
            prop_assert_eq!(rec, expect, "divergence at merged index {}", idx);
            in_quantum += 1;
        }
    }
}

#[test]
fn presets_survive_spec_style_sampling() {
    // Every preset produces the Table 1 reference mix across independent
    // workload instances (construction is pure).
    for b in SpecBenchmark::ALL {
        let w1: Vec<_> = b.workload().take_instructions(300);
        let w2: Vec<_> = b.workload().take_instructions(300);
        assert_eq!(w1, w2, "{b} differs across constructions");
    }
}
