//! Replays the committed audit regression corpus under `tests/corpus/`.
//!
//! Every corpus entry is a pair written by `tlc audit` after `ddmin`
//! shrinking: `<stem>.evt` (a packed `TLCEVT01` event trace) plus
//! `<stem>.json` (a `tlc-audit-corpus/1` sidecar naming the geometry it
//! diverged on). Entries with `expect_divergence: false` pin a fixed
//! bug — the engines must agree on them forever. Entries with `true`
//! document a benign divergence — it must keep reproducing exactly as
//! the sidecar's note describes.

use std::fs;
use std::path::PathBuf;
use tlc_core::audit::{replay_corpus_entry, CorpusEntryMeta, CORPUS_ENTRY_SCHEMA};
use tlc_trace::io::{read_event_trace, write_event_trace};
use tlc_trace::shrink::ddmin;
use tlc_trace::{AccessKind, EventArena, LineAddr, MissEvent, VictimLine};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Loads every `<stem>.json` sidecar (sorted for deterministic order)
/// with its decoded event trace.
fn load_corpus() -> Vec<(String, CorpusEntryMeta, EventArena)> {
    let dir = corpus_dir();
    let mut stems: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    stems.sort();
    stems
        .into_iter()
        .map(|sidecar| {
            let stem =
                sidecar.file_stem().and_then(|s| s.to_str()).expect("utf-8 stem").to_string();
            let meta: CorpusEntryMeta =
                serde_json::from_str(&fs::read_to_string(&sidecar).expect("sidecar readable"))
                    .unwrap_or_else(|e| panic!("{stem}.json is not a corpus sidecar: {e}"));
            let evt = sidecar.with_extension("evt");
            let events = read_event_trace(
                fs::File::open(&evt)
                    .unwrap_or_else(|e| panic!("{stem}.json has no matching {stem}.evt: {e}")),
            )
            .unwrap_or_else(|e| panic!("{stem}.evt is not a valid event trace: {e}"));
            (stem, meta, events)
        })
        .collect()
}

#[test]
fn every_corpus_entry_replays_as_documented() {
    for (stem, meta, events) in load_corpus() {
        assert_eq!(meta.schema, CORPUS_ENTRY_SCHEMA, "{stem}: unknown sidecar schema");
        assert!(!meta.note.is_empty(), "{stem}: sidecar must explain itself");
        let divergence = replay_corpus_entry(&meta, events);
        if meta.expect_divergence {
            assert!(
                divergence.is_some(),
                "{stem}: documented divergence no longer reproduces — \
                 if the underlying behavior was fixed, delete the entry \
                 (note: {})",
                meta.note
            );
        } else {
            assert_eq!(
                divergence, None,
                "{stem}: regression! a previously-fixed divergence is back \
                 (note: {})",
                meta.note
            );
        }
    }
}

/// A synthetic entry exercises the full corpus pipeline (serialize,
/// strict decode, sidecar round-trip, oracle replay) even while the
/// committed corpus holds no divergence witnesses.
#[test]
fn synthetic_corpus_entry_round_trips_and_agrees() {
    let mut events = EventArena::new();
    for i in 0..64u64 {
        events.push(MissEvent {
            kind: if i % 3 == 0 { AccessKind::InstrFetch } else { AccessKind::Load },
            line: LineAddr(i % 17),
            victim: (i % 5 == 0)
                .then(|| VictimLine { line: LineAddr((i + 7) % 17), written: i % 10 == 0 }),
        });
    }
    let mut buf = Vec::new();
    write_event_trace(&mut buf, &events).expect("serialize");
    let decoded = read_event_trace(buf.as_slice()).expect("strict decode");
    assert_eq!(decoded.len(), events.len());

    let meta = CorpusEntryMeta {
        schema: CORPUS_ENTRY_SCHEMA.to_string(),
        check: "filtered-vs-oracle".to_string(),
        l1_size_bytes: 1024,
        line_bytes: 16,
        warmup_events: 0,
        l2: Some(tlc_core::L2Spec {
            size_bytes: 4096,
            ways: 2,
            policy: tlc_core::L2Policy::Conventional,
            repl: tlc_cache::ReplacementKind::PseudoRandom,
        }),
        note: "synthetic pipeline check; engines agree".to_string(),
        expect_divergence: false,
    };
    assert_eq!(replay_corpus_entry(&meta, decoded), None);
}

/// The acceptance bar for archived witnesses: re-running the shrinker
/// on the same failing input reproduces the same minimal trace
/// byte-for-byte (so corpus entries are stable across audit re-runs).
#[test]
fn shrinker_is_deterministic_on_event_traces() {
    let events: Vec<MissEvent> = (0..40u64)
        .map(|i| MissEvent {
            kind: if i % 2 == 0 { AccessKind::Load } else { AccessKind::Store },
            line: LineAddr(i),
            victim: None,
        })
        .collect();
    // An artificial failure predicate: "contains lines 13 and 29".
    let fails =
        |c: &[MissEvent]| c.iter().any(|e| e.line.0 == 13) && c.iter().any(|e| e.line.0 == 29);
    let serialize = |minimal: &[MissEvent]| {
        let mut arena = EventArena::new();
        for e in minimal {
            arena.push(*e);
        }
        let mut buf = Vec::new();
        write_event_trace(&mut buf, &arena).expect("serialize");
        buf
    };
    let first = serialize(&ddmin(&events, fails));
    let second = serialize(&ddmin(&events, fails));
    assert_eq!(first, second, "ddmin must shrink to identical bytes");
    assert_eq!(first.len(), 8 + 8 + 2 * 17, "1-minimal: exactly the two culprits");
}
